package index

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// Persistence: a built index serializes to a single stream carrying the
// designator/path tables, the path links with their sibling-cover metadata,
// the flattened document-id lists, the schema the sequencing strategy was
// derived from, and the corpus repeat set. Load reconstructs a query-ready
// index — the trie itself is not stored (queries need only the links and
// labels), so loaded indexes are immutable and Trie() returns nil.
//
// On-disk format v2 (the format Save writes):
//
//	offset  size  field
//	0       8     magic "XSEQIDX2"
//	8       8     payload length, big-endian uint64
//	16      n     payload: gob(persistedIndex)
//	16+n    4     CRC-32 (IEEE) of the payload, big-endian uint32
//
// Truncation is caught by the length field, bit flips by the checksum, and
// both are reported as *CorruptError. Load still accepts v1 streams (bare
// gob, no header or checksum) for backward compatibility; v1 corruption is
// detected by gob decoding plus the structural invariant check and reported
// as *CorruptError too.

// persistVersion is the format version Save writes.
const persistVersion = 2

// persistMagic opens every v2 stream. v1 streams are bare gob: they begin
// with a varint-encoded type definition, never with this byte sequence.
var persistMagic = [8]byte{'X', 'S', 'E', 'Q', 'I', 'D', 'X', '2'}

// maxPersistPayload caps how large a stream Load will buffer (a sanity
// bound against corrupt or hostile length fields, far above any real
// index).
const maxPersistPayload = int64(1) << 36 // 64 GiB

// CorruptError reports that a Save stream failed validation: truncated,
// bit-flipped, checksum mismatch, undecodable, or structurally
// inconsistent. Use errors.As to detect it.
type CorruptError struct {
	// Reason is a short human-readable diagnosis ("truncated stream",
	// "checksum mismatch", ...).
	Reason string
	// Err is the underlying decode error, if any.
	Err error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("index: corrupt stream: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("index: corrupt stream: %s", e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

type persistedLink struct {
	Path   pathenc.PathID
	Pre    []int32
	Max    []int32
	Anc    []int32
	Embeds []bool
}

type persistedIndex struct {
	Version   int
	Encoder   pathenc.Snapshot
	Schema    *schema.Node
	Repeat    []pathenc.PathID
	Links     []persistedLink
	EndPres   []int32
	EndOffs   []int32
	EndLens   []int32
	EndIDs    []int32
	NumDocs   int
	MaxDocID  int32
	MaxSerial int32
	Options   persistedOptions
	Docs      []*xmltree.Document // nil unless KeepDocuments
}

type persistedOptions struct {
	InstantiationLimit    int
	OrderEnumerationLimit int
	KeepDocuments         bool
}

// Save writes the index to w in format v2 (magic header, length, gob
// payload, CRC-32 trailer). Only probability-strategy (g_best) indexes are
// saveable: the strategy is reconstructed from the schema on Load.
func (ix *Index) Save(w io.Writer) error {
	prob, ok := sequence.AsProbability(ix.strategy)
	if !ok {
		return fmt.Errorf("index: only probability-strategy indexes can be saved (have %q)", ix.strategy.Name())
	}
	sch := prob.Model.Schema()
	if sch == nil || sch.Root == nil {
		return fmt.Errorf("index: strategy carries no schema")
	}
	p := persistedIndex{
		Version:   persistVersion,
		Encoder:   ix.enc.Snapshot(),
		Schema:    sch.Root,
		NumDocs:   ix.numDocs,
		MaxDocID:  ix.maxDocID,
		MaxSerial: ix.maxSerial,
		EndPres:   ix.ends.pres,
		EndOffs:   ix.ends.offs,
		EndLens:   ix.ends.lens,
		EndIDs:    ix.ends.ids,
		Options: persistedOptions{
			InstantiationLimit:    ix.opts.InstantiationLimit,
			OrderEnumerationLimit: ix.opts.OrderEnumerationLimit,
			KeepDocuments:         ix.opts.KeepDocuments,
		},
		Docs: ix.docs,
	}
	for path := range prob.RepeatPaths() {
		p.Repeat = append(p.Repeat, path)
	}
	for path, link := range ix.links {
		pl := persistedLink{
			Path:   path,
			Pre:    make([]int32, len(link)),
			Max:    make([]int32, len(link)),
			Anc:    make([]int32, len(link)),
			Embeds: make([]bool, len(link)),
		}
		for i, e := range link {
			pl.Pre[i], pl.Max[i], pl.Anc[i], pl.Embeds[i] = e.pre, e.max, e.anc, e.embeds
		}
		p.Links = append(p.Links, pl)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&p); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:8], persistMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	sum := crc32.ChecksumIEEE(payload.Bytes())
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], sum)
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// SaveFile writes the index to path crash-safely: the stream goes to a
// temporary file in the same directory, is fsynced, and is atomically
// renamed over path, so a crash or failure mid-save can never leave a torn
// or half-written index at path (any previous file there survives intact).
func (ix *Index) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("index: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = ix.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("index: save %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("index: save %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("index: save %s: rename: %w", path, err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadFile reconstructs an index from a file written by SaveFile (or any
// Save stream on disk).
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load %s: %w", path, err)
	}
	defer f.Close()
	ix, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("index: load %s: %w", path, err)
	}
	return ix, nil
}

// Load reconstructs a query-ready index from a Save stream. It accepts
// both the current v2 format and legacy v1 (bare gob) streams; any
// corruption — truncation, bit flips, checksum mismatch, or structural
// inconsistency — is reported as a *CorruptError.
func Load(r io.Reader) (*Index, error) {
	var hdr [16]byte
	n, err := io.ReadFull(r, hdr[:8])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, &CorruptError{Reason: "unreadable stream", Err: err}
	}
	if n == 8 && bytes.Equal(hdr[:8], persistMagic[:]) {
		return loadV2(r)
	}
	// Not a v2 header: replay the consumed bytes and try the legacy bare-gob
	// format.
	return loadV1(io.MultiReader(bytes.NewReader(hdr[:n]), r))
}

// loadV2 reads the remainder of a v2 stream after the magic bytes.
func loadV2(r io.Reader) (*Index, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated header", Err: err}
	}
	size := binary.BigEndian.Uint64(lenBuf[:])
	if int64(size) < 0 || int64(size) > maxPersistPayload {
		return nil, &CorruptError{Reason: fmt.Sprintf("implausible payload length %d", size)}
	}
	// Read through a LimitedReader so a corrupt length field cannot force a
	// huge up-front allocation: the buffer grows only as bytes arrive.
	var payload bytes.Buffer
	got, err := io.Copy(&payload, io.LimitReader(r, int64(size)))
	if err != nil {
		return nil, &CorruptError{Reason: "unreadable payload", Err: err}
	}
	if uint64(got) != size {
		return nil, &CorruptError{Reason: fmt.Sprintf("truncated stream: payload %d of %d bytes", got, size)}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated checksum trailer", Err: err}
	}
	want := binary.BigEndian.Uint32(trailer[:])
	if sum := crc32.ChecksumIEEE(payload.Bytes()); sum != want {
		return nil, &CorruptError{Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", want, sum)}
	}
	var p persistedIndex
	if err := gob.NewDecoder(&payload).Decode(&p); err != nil {
		return nil, &CorruptError{Reason: "undecodable payload", Err: err}
	}
	if p.Version != persistVersion {
		return nil, &CorruptError{Reason: fmt.Sprintf("v2 stream carries payload version %d, want %d", p.Version, persistVersion)}
	}
	return reconstruct(&p)
}

// loadV1 decodes a legacy bare-gob stream.
func loadV1(r io.Reader) (*Index, error) {
	var p persistedIndex
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, &CorruptError{Reason: "not a recognizable index stream", Err: err}
	}
	if p.Version != 1 {
		return nil, &CorruptError{Reason: fmt.Sprintf("unsupported format version %d", p.Version)}
	}
	return reconstruct(&p)
}

// reconstruct rebuilds a query-ready index from a decoded payload,
// validating structural invariants so a decodable-but-inconsistent stream
// cannot produce a silently wrong index.
func reconstruct(p *persistedIndex) (*Index, error) {
	if p.NumDocs < 0 || p.MaxDocID < 0 || p.MaxSerial < 0 {
		return nil, &CorruptError{Reason: fmt.Sprintf("negative size fields (docs %d, max id %d, max serial %d)",
			p.NumDocs, p.MaxDocID, p.MaxSerial)}
	}
	enc, err := pathenc.FromSnapshot(p.Encoder)
	if err != nil {
		return nil, &CorruptError{Reason: "invalid encoder snapshot", Err: err}
	}
	sch, err := schema.New(p.Schema)
	if err != nil {
		return nil, &CorruptError{Reason: "invalid schema", Err: err}
	}
	strategy := sequence.NewProbability(sch, enc)
	repeat := make(map[pathenc.PathID]bool, len(p.Repeat))
	for _, path := range p.Repeat {
		repeat[path] = true
	}
	strategy.SetRepeatPaths(repeat)

	ix := &Index{
		enc:       enc,
		strategy:  strategy,
		prio:      strategy,
		links:     make(map[pathenc.PathID][]linkEntry, len(p.Links)),
		numDocs:   p.NumDocs,
		maxDocID:  p.MaxDocID,
		maxSerial: p.MaxSerial,
		docs:      p.Docs,
		opts: Options{
			Encoder:               enc,
			Strategy:              strategy,
			InstantiationLimit:    p.Options.InstantiationLimit,
			OrderEnumerationLimit: p.Options.OrderEnumerationLimit,
			KeepDocuments:         p.Options.KeepDocuments,
		},
	}
	ix.ends = endList{pres: p.EndPres, offs: p.EndOffs, lens: p.EndLens, ids: p.EndIDs}
	for _, pl := range p.Links {
		n := len(pl.Pre)
		if len(pl.Max) != n || len(pl.Anc) != n || len(pl.Embeds) != n {
			return nil, &CorruptError{Reason: fmt.Sprintf("link %d has ragged arrays", pl.Path)}
		}
		link := make([]linkEntry, n)
		for i := range link {
			link[i] = linkEntry{pre: pl.Pre[i], max: pl.Max[i], anc: pl.Anc[i], embeds: pl.Embeds[i]}
		}
		ix.links[pl.Path] = link
	}
	ix.ci = enc.BuildChildIndex()
	if err := ix.CheckInvariants(); err != nil {
		return nil, &CorruptError{Reason: "invariant violation", Err: err}
	}
	return ix, nil
}
