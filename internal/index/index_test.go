package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// buildCS builds a probability-strategy index over docs, inferring the
// schema from the corpus itself.
func buildCS(t testing.TB, docs []*xmltree.Document, opts Options) *Index {
	t.Helper()
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Encoder == nil {
		opts.Encoder = pathenc.NewEncoder(1 << 20)
	}
	if opts.Strategy == nil {
		opts.Strategy = sequence.NewProbability(sch, opts.Encoder)
	}
	ix, err := Build(docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// canonicalPattern clones the pattern with values replaced by their hash
// bucket names, matching sequence.CanonicalizeValues on documents, so
// ground-truth comparisons share the engine's designator-level semantics.
func canonicalPattern(p *query.Pattern, enc *pathenc.Encoder) *query.Pattern {
	var clone func(n *query.PNode) *query.PNode
	clone = func(n *query.PNode) *query.PNode {
		cp := &query.PNode{Axis: n.Axis, Wildcard: n.Wildcard, Name: n.Name, IsValue: n.IsValue, Value: n.Value}
		if n.IsValue {
			cp.Value = enc.SymbolName(enc.ValueSymbol(n.Value))
		}
		for _, c := range n.Children {
			cp.Children = append(cp.Children, clone(c))
		}
		return cp
	}
	return &query.Pattern{Root: clone(p.Root), Text: p.Text}
}

// groundTruth evaluates the pattern at designator level: both documents and
// pattern canonicalized to value-bucket names.
func groundTruth(docs []*xmltree.Document, p *query.Pattern, enc *pathenc.Encoder) []int32 {
	canon := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		canon[i] = &xmltree.Document{ID: d.ID, Root: sequence.CanonicalizeValues(d.Root, enc)}
	}
	return query.Eval(canon, canonicalPattern(p, enc))
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildErrors(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	st := sequence.DepthFirst{Enc: enc}
	if _, err := Build(nil, Options{Strategy: st}); err == nil {
		t.Fatal("missing encoder should fail")
	}
	if _, err := Build(nil, Options{Encoder: enc}); err == nil {
		t.Fatal("missing strategy should fail")
	}
	docs := []*xmltree.Document{
		{ID: 1, Root: xmltree.Figure2a()},
		{ID: 1, Root: xmltree.Figure2b()},
	}
	if _, err := Build(docs, Options{Encoder: enc, Strategy: st}); err == nil {
		t.Fatal("duplicate ids should fail")
	}
	if _, err := Build([]*xmltree.Document{{ID: -2, Root: xmltree.Figure2a()}},
		Options{Encoder: enc, Strategy: st}); err == nil {
		t.Fatal("negative id should fail")
	}
}

func TestBuildCounts(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure1()},
	}
	ix := buildCS(t, docs, Options{})
	if ix.NumDocuments() != 2 {
		t.Fatalf("NumDocuments = %d", ix.NumDocuments())
	}
	// Identical documents share their entire chain.
	if ix.NumNodes() != xmltree.Figure1().Size() {
		t.Fatalf("NumNodes = %d want %d", ix.NumNodes(), xmltree.Figure1().Size())
	}
	if ix.NumLinks() == 0 {
		t.Fatal("no links built")
	}
	want := 4*int64(2) + 8*int64(ix.NumNodes())
	if got := ix.EstimatedDiskBytes(); got != want {
		t.Fatalf("EstimatedDiskBytes = %d want %d", got, want)
	}
}

func TestQueryRequiresPriority(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}}
	ix, err := Build(docs, Options{Encoder: enc, Strategy: sequence.DepthFirst{Enc: enc}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(query.MustParse("/P")); err == nil {
		t.Fatal("depth-first strategy should be rejected for querying")
	}
}

func TestQuerySection31(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 7, Root: xmltree.Figure1()},
		{ID: 9, Root: xmltree.Figure2a()}, // no values, no match
	}
	ix := buildCS(t, docs, Options{})
	got, err := ix.Query(query.MustParse("/P[R/L='newyork']/D[L='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{7}) {
		t.Fatalf("query result = %v", got)
	}
	// Wildcard form of the same query: /P/*[L='boston'] should hit doc 7
	// (D has L=boston).
	got2, err := ix.Query(query.MustParse("/P/*[L='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got2, []int32{7}) {
		t.Fatalf("wildcard query result = %v", got2)
	}
}

func TestFalseAlarmEliminated(t *testing.T) {
	// Figure 4: data P(L(S), L(B)); query P(L(S,B)).
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure4D()}}
	ix := buildCS(t, docs, Options{})
	pat := query.MustParse("/P/L[S][B]")

	constraint, err := ix.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(constraint) != 0 {
		t.Fatalf("constraint match returned false alarm: %v", constraint)
	}
	naive, err := ix.QueryWith(pat, QueryOptions{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(naive, []int32{0}) {
		t.Fatalf("naive match should produce the false alarm; got %v", naive)
	}
}

func TestTrueMatchesSurviveConstraint(t *testing.T) {
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure4D()}}
	ix := buildCS(t, docs, Options{})
	for _, q := range []string{"/P/L/S", "/P/L/B", "/P[L/S][L/B]"} {
		got, err := ix.Query(query.MustParse(q))
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, []int32{0}) {
			t.Fatalf("query %s = %v want [0]", q, got)
		}
	}
}

func TestIsomorphicFormsBothMatch(t *testing.T) {
	// Figure 5: both sibling orders of the data must answer the same
	// queries (the enumeration remedy).
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure5a()},
		{ID: 1, Root: xmltree.Figure5b()},
	}
	ix := buildCS(t, docs, Options{})
	got, err := ix.Query(query.MustParse("/P[L/S][L/B]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1}) {
		t.Fatalf("isomorphic forms: got %v want [0 1]", got)
	}
}

func TestIdenticalSiblingDataNoFalseDismissal(t *testing.T) {
	// Data with an empty D and a full D (Figure 3(c)); the query asking
	// for D with both L and M must match, and the query asking for two
	// separate D branches must also match.
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure3c()},
		{ID: 1, Root: xmltree.Figure3b()},
	}
	ix := buildCS(t, docs, Options{})
	got, err := ix.Query(query.MustParse("/P/D[L][M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("/P/D[L][M] = %v want [0] (only 3(c) has one D over both)", got)
	}
	// Two separate D branches require two distinct D witnesses (injective
	// sibling mapping, the Figure 2(c) semantics): only 3(b) qualifies —
	// in 3(c) the empty D has neither L nor M.
	got2, err := ix.Query(query.MustParse("/P[D/L][D/M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got2, []int32{1}) {
		t.Fatalf("/P[D/L][D/M] = %v want [1]", got2)
	}
}

func TestDescendantAndValueQueries(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure3a()},
	}
	ix := buildCS(t, docs, Options{})
	cases := []struct {
		q    string
		want []int32
	}{
		{"//N[text='GUI']", []int32{0}},
		{"//L[text='boston']", []int32{0, 1}},
		{"/P//M[text='mary']", []int32{0}},
		{"//U", []int32{0}},
		{"//Z", nil},
		{"/P/R/L[text='boston']", []int32{1}},
	}
	for _, c := range cases {
		got, err := ix.Query(query.MustParse(c.q))
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, c.want) {
			t.Fatalf("query %s = %v want %v", c.q, got, c.want)
		}
	}
}

func TestVerifiedQuery(t *testing.T) {
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}}
	ix := buildCS(t, docs, Options{KeepDocuments: true})
	got, err := ix.QueryWith(query.MustParse("/P/D/L[text='boston']"), QueryOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("verified query = %v", got)
	}
	// Verify without KeepDocuments errors.
	ix2 := buildCS(t, docs, Options{})
	if _, err := ix2.QueryWith(query.MustParse("/P"), QueryOptions{Verify: true}); err == nil {
		t.Fatal("Verify without KeepDocuments should fail")
	}
}

func TestLinkInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var docs []*xmltree.Document
	for i := 0; i < 40; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})
	for p, link := range ix.links {
		for i := range link {
			if i > 0 && link[i-1].pre >= link[i].pre {
				t.Fatalf("link %s not sorted", ix.enc.PathString(p))
			}
			if link[i].pre > link[i].max {
				t.Fatalf("link %s entry %d inverted interval", ix.enc.PathString(p), i)
			}
			if a := link[i].anc; a >= 0 {
				if a >= int32(i) {
					t.Fatalf("anc points forward")
				}
				if !(link[a].pre < link[i].pre && link[a].max >= link[i].max) {
					t.Fatalf("anc does not contain entry")
				}
				if !link[a].embeds {
					t.Fatalf("ancestor not marked embeds")
				}
			}
		}
	}
}

func randomTree(rng *rand.Rand, depth, fan int) *xmltree.Node {
	return randomSubtree(rng, depth, fan, true)
}

func randomSubtree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	var n *xmltree.Node
	if isRoot {
		// A fixed root label keeps corpora schema-inferable.
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomSubtree(rng, depth-1, fan, false))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

// TestQuickQueryEquivalence is the library's central property: for random
// corpora with abundant identical siblings and random extracted patterns,
// constraint matching agrees exactly with the ground-truth structural
// evaluator — query equivalence (Theorem 2) plus the isomorphism
// enumeration remedy.
func TestQuickQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 12; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3)})
		}
		ix := buildCS(t, docs, Options{})
		for k := 0; k < 6; k++ {
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			want := groundTruth(docs, pat, ix.enc)
			got, err := ix.Query(pat)
			if err != nil {
				t.Logf("query error: %v", err)
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch for %s:\n got %v\nwant %v", pat, got, want)
				for _, d := range docs {
					t.Logf("doc %d: %v", d.ID, d.Root)
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNaiveNeverMissesTruth: the naive mode is a superset of the
// constraint answers (false alarms only, never dismissals relative to the
// constraint engine).
func TestQuickNaiveSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 10; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3)})
		}
		ix := buildCS(t, docs, Options{})
		for k := 0; k < 4; k++ {
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			strict, err := ix.Query(pat)
			if err != nil {
				return false
			}
			naive, err := ix.QueryWith(pat, QueryOptions{Naive: true})
			if err != nil {
				return false
			}
			set := map[int32]bool{}
			for _, id := range naive {
				set[id] = true
			}
			for _, id := range strict {
				if !set[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPagedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var docs []*xmltree.Document
	for i := 0; i < 200; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})
	pool := pager.NewPool(8)
	pages, err := ix.AttachPager(pool)
	if err != nil {
		t.Fatal(err)
	}
	if pages <= 0 || ix.PagedBytes() != pages*pager.PageSize {
		t.Fatalf("pages = %d bytes = %d", pages, ix.PagedBytes())
	}
	pat := query.MustParse("//A")
	if _, err := ix.Query(pat); err != nil {
		t.Fatal(err)
	}
	s := ix.PagerStats()
	if s.Reads == 0 || s.Misses == 0 {
		t.Fatalf("paged query did no I/O: %+v", s)
	}
	// Warm rerun: fewer misses than cold.
	ix.ResetPagerStats()
	if _, err := ix.Query(pat); err != nil {
		t.Fatal(err)
	}
	warm := ix.PagerStats()
	ix.DropPagerCache()
	if _, err := ix.Query(pat); err != nil {
		t.Fatal(err)
	}
	cold := ix.PagerStats()
	if warm.Misses > cold.Misses {
		t.Fatalf("warm misses %d > cold misses %d", warm.Misses, cold.Misses)
	}
	// Paged results identical to unpaged.
	ix.DetachPager()
	if ix.PagerStats() != (pager.Stats{}) {
		t.Fatal("detached stats should be zero")
	}
	unpaged, _ := ix.Query(pat)
	pool2 := pager.NewPool(8)
	if _, err := ix.AttachPager(pool2); err != nil {
		t.Fatal(err)
	}
	paged, _ := ix.Query(pat)
	if !sameIDs(unpaged, paged) {
		t.Fatal("paged and unpaged results differ")
	}
}

func TestBulkLoadEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var docs []*xmltree.Document
	for i := 0; i < 50; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	enc := pathenc.NewEncoder(1 << 20)
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		t.Fatal(err)
	}
	st := sequence.NewProbability(sch, enc)
	a, err := Build(docs, Options{Encoder: enc, Strategy: st})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(docs, Options{Encoder: enc, Strategy: st, BulkLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("bulk load changed node count: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	pat := query.MustParse("//B")
	ra, _ := a.Query(pat)
	rb, _ := b.Query(pat)
	if !sameIDs(ra, rb) {
		t.Fatalf("bulk load changed answers: %v vs %v", ra, rb)
	}
}
