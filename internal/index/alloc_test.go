package index

import (
	"math/rand"
	"sync"
	"testing"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// The steady-state query path is built to be allocation-free: the per-query
// scratch (ins stack, epoch-stamp dedup array, collectDocs buffer,
// instantiation scratch) comes from a sync.Pool, and the only mandatory
// allocation left is the caller-owned result slice. These tests pin that
// property down with testing.AllocsPerRun so a regression — a map rebuilt
// per candidate, a stamp array re-made per query — fails CI instead of
// silently inflating the allocation profile.

// allocCorpus builds a warm index over a deterministic random corpus.
func allocCorpus(t testing.TB, n int, seed int64) (*Index, []*xmltree.Document) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var docs []*xmltree.Document
	for i := 0; i < n; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	return buildCS(t, docs, Options{}), docs
}

func TestQueryAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool reuse; allocation counts are asserted in non-race runs")
	}
	ix, _ := allocCorpus(t, 100, 7)
	ixBig, _ := allocCorpus(t, 400, 7)

	// Two bound tiers. Concrete patterns exercise the match kernel alone:
	// one instance, one order, so the pooled scratch leaves only the
	// enumeration of that instance plus the result copy — a tight bound.
	// Wildcard/descendant patterns additionally pay instantiation and
	// order enumeration, whose allocations are a pattern×schema-sized
	// constant (bounded by InstantiationLimit), never O(corpus) — the
	// looser bound plus the 4x-corpus comparison pins that down.
	patterns := []struct {
		q   string
		max float64
	}{
		{"/R[A][B]", 32},
		{"//A", 160},
		{"//B[C]", 160},
		{"/R/*", 160},
		{"//C[text='A']", 160},
	}
	for _, p := range patterns {
		pat := query.MustParse(p.q)
		var perIx [2]float64
		for i, c := range []struct {
			name string
			ix   *Index
		}{{"100docs", ix}, {"400docs", ixBig}} {
			if _, err := c.ix.Query(pat); err != nil { // warm the scratch pool
				t.Fatal(err)
			}
			got := testing.AllocsPerRun(100, func() {
				if _, err := c.ix.Query(pat); err != nil {
					t.Fatal(err)
				}
			})
			perIx[i] = got
			t.Logf("%s %s: %.1f allocs/op", p.q, c.name, got)
			if got > p.max {
				t.Errorf("%s on %s: %.1f allocs/op, want <= %.0f", p.q, c.name, got, p.max)
			}
		}
		// A 4x corpus may enlarge the schema slightly (more distinct paths
		// to instantiate against) but must not scale the per-op allocation
		// count: no per-candidate map, no per-sequence stamp array, no
		// per-terminal doc slice.
		if perIx[1] > perIx[0]*1.5+8 {
			t.Errorf("%s: allocs scale with corpus: %.1f (100 docs) -> %.1f (400 docs)",
				p.q, perIx[0], perIx[1])
		}
	}
}

// TestScratchPoolConcurrentQueries hammers the shared scratch pool from many
// goroutines across two indexes with different corpus sizes (hence different
// stamp-array sizing needs), verifying every answer against the sequential
// one. Run with -race: a pooled buffer leaking across concurrent queries, or
// a stamp array handed to an index with a larger maxDocID, shows up here.
func TestScratchPoolConcurrentQueries(t *testing.T) {
	small, _ := allocCorpus(t, 20, 11)
	big, _ := allocCorpus(t, 300, 12)
	indexes := []*Index{small, big}

	queries := []*query.Pattern{
		query.MustParse("//A"),
		query.MustParse("//B[C]"),
		query.MustParse("/R/*"),
		query.MustParse("/R[A][B]"),
		query.MustParse("//C[text='A']"),
	}
	want := make([][][]int32, len(indexes))
	for i, ix := range indexes {
		want[i] = make([][]int32, len(queries))
		for j, q := range queries {
			ids, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want[i][j] = ids
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 60; k++ {
				ii := (g + k) % len(indexes)
				qi := (g * 3 / 2 * (k + 1)) % len(queries)
				got, err := indexes[ii].Query(queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if !sameIDs(got, want[ii][qi]) {
					t.Errorf("goroutine %d: index %d query %d diverged", g, ii, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
