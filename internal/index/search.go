package index

import (
	"sort"

	"xseq/internal/pathenc"
	"xseq/internal/sequence"
)

// This file implements Algorithm 1: constraint subsequence matching over the
// path links.
//
// A document's constraint sequence inserts as one root-to-leaf chain of the
// trie, so a subsequence match against a document visits trie nodes of
// strictly increasing depth along that chain: each query element is matched
// by a link entry nested inside the previous element's interval. The
// constraint test (Definition 3's second criterion) is enforced through the
// sibling-cover rule: whenever a matched entry "embeds identical siblings"
// (a later same-path entry is nested inside it), it is recorded in ins, and
// a later candidate whose relevant forward prefix would resolve to a
// *different* same-path entry is rejected (Theorem 3).
//
// Two refinements over the paper's pseudocode, both required for
// correctness on tries with branching (the paper's narration assumes the
// nested chain case):
//
//  1. ins keeps only the most recent matched entry per path — in an
//     f2-generated query sequence, later elements' forward prefixes always
//     resolve to the latest preceding occurrence of the prefix path, so
//     earlier group members impose no constraint once a newer one matched.
//  2. the cover test is evaluated as "the innermost same-path strict
//     ancestor of the candidate must be the recorded entry", instead of
//     Definition 4's "inside the (i+1)-th entry of the link", which is its
//     specialization to non-branching links.

// insEntry records a matched entry that embeds identical siblings (or
// shadows an older recorded entry of the same path).
type insEntry struct {
	path pathenc.PathID
	link int32 // entry index within links[path]
}

func insHasPath(ins []insEntry, p pathenc.PathID) bool {
	for k := len(ins) - 1; k >= 0; k-- {
		if ins[k].path == p {
			return true
		}
	}
	return false
}

// search runs one query sequence through the index, accumulating document
// ids of every terminal range into res. All transient state — the ins
// stack and the terminal doc-id buffer — lives in the pooled scratch, so
// the steady-state inner loop allocates nothing.
func (ix *Index) search(q sequence.Sequence, naive bool, res *resultSet) {
	if len(q) == 0 {
		return
	}
	stats := res.stats
	scr := res.scr
	ins := scr.ins[:0]
	var rec func(i int, lo, hi int32)
	rec = func(i int, lo, hi int32) {
		p := q[i]
		link := ix.links[p]
		if len(link) == 0 {
			return
		}
		// Binary search the first entry with pre >= lo (Figure 9's
		// "perform binary search in I to find nodes ∈ [vs, vm]").
		start := ix.searchLink(p, link, lo, stats)
		for idx := start; idx < len(link) && link[idx].pre <= hi && !res.full(); idx++ {
			if res.cancelled() {
				return
			}
			ix.touchLinkSlot(p, idx)
			if stats != nil {
				stats.EntriesScanned++
			}
			e := link[idx]
			if !naive && ix.siblingCovered(p, e, ins, stats) {
				continue
			}
			if i == len(q)-1 {
				// "output the document id lists of node v and all nodes
				// under v".
				scr.docBuf = ix.collectDocs(e.pre, e.max, scr.docBuf[:0])
				res.addAll(scr.docBuf)
				continue
			}
			saved := len(ins)
			if !naive && (e.embeds || insHasPath(ins, p)) {
				// Record entries that embed identical siblings (they
				// constrain later candidates), and any match whose path is
				// already recorded — the newer match shadows the older one,
				// because an f2 query sequence resolves later forward
				// prefixes to the most recent occurrence.
				ins = append(ins, insEntry{path: p, link: int32(idx)})
			}
			rec(i+1, e.pre+1, e.max)
			ins = ins[:saved]
		}
	}
	rec(0, 1, ix.maxSerial)
	scr.ins = ins[:0] // hand the (possibly grown) stack back for reuse
}

// searchLink binary searches link for the first entry with pre >= lo,
// charging one page touch per probe when paged.
func (ix *Index) searchLink(p pathenc.PathID, link []linkEntry, lo int32, stats *QueryStats) int {
	return sort.Search(len(link), func(k int) bool {
		ix.touchLinkSlot(p, k)
		if stats != nil {
			stats.LinkProbes++
		}
		return link[k].pre >= lo
	})
}

// siblingCovered reports whether candidate entry e (a match for the current
// query element) violates the constraint relative to any recorded ins
// entry: for each recorded (path px, entry x) where px is a strict prefix
// of the candidate's path, the innermost same-px strict ancestor of e must
// be x itself; if a *different* same-px entry lies between them, the
// candidate's forward prefix would resolve there and the match would not be
// a constraint match.
func (ix *Index) siblingCovered(p pathenc.PathID, e linkEntry, ins []insEntry, stats *QueryStats) bool {
	for k := len(ins) - 1; k >= 0; k-- {
		x := ins[k]
		// Later entries shadow earlier ones per path (most recent wins):
		// a reverse scan over the entries already visited replaces the
		// per-candidate seen-map — ins is a small stack (bounded by query
		// depth), so the quadratic shadow check is cheaper than one map
		// allocation, let alone one per candidate.
		shadowed := false
		for j := k + 1; j < len(ins); j++ {
			if ins[j].path == x.path {
				shadowed = true
				break
			}
		}
		if shadowed {
			continue
		}
		if !ix.enc.IsStrictPrefix(x.path, p) {
			continue
		}
		if stats != nil {
			stats.CoverChecks++
		}
		if ix.innermostAncestor(x.path, e.pre, stats) != x.link {
			if stats != nil {
				stats.CoverRejections++
			}
			return true
		}
	}
	return false
}

// innermostAncestor returns the index, within links[px], of the innermost
// entry that strictly contains serial pre (an entry with entry.pre < pre
// and entry.max >= pre), or -1. It binary searches the predecessor by pre
// and follows anc pointers until containment — every same-path ancestor of
// a serial is an ancestor of its link predecessor, so the anc chain visits
// them all.
func (ix *Index) innermostAncestor(px pathenc.PathID, pre int32, stats *QueryStats) int32 {
	link := ix.links[px]
	idx := sort.Search(len(link), func(k int) bool {
		ix.touchLinkSlot(px, k)
		if stats != nil {
			stats.LinkProbes++
		}
		return link[k].pre >= pre
	}) - 1
	for idx >= 0 {
		ix.touchLinkSlot(px, int(idx))
		if link[idx].max >= pre {
			return int32(idx)
		}
		idx = int(link[idx].anc)
	}
	return -1
}
