package index

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// largeCorpus builds a corpus big enough that a full scan takes measurable
// time, so cancellation has something to interrupt.
func largeCorpus(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		docs[i] = &xmltree.Document{ID: int32(i), Root: randomTree(rng, 5, 3)}
	}
	return docs
}

func TestBuildContextCancelled(t *testing.T) {
	docs := largeCorpus(t, 64)
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		t.Fatal(err)
	}
	enc := pathenc.NewEncoder(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = BuildContext(ctx, docs, Options{Encoder: enc, Strategy: sequence.NewProbability(sch, enc)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestQueryContextCancelled(t *testing.T) {
	docs := largeCorpus(t, 512)
	ix := buildCS(t, docs, Options{})
	pat := query.MustParse("//A")

	// Sanity: the query answers normally with a live context.
	if _, err := ix.QueryContext(context.Background(), pat); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	ids, err := ix.QueryContext(ctx, pat)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext on cancelled ctx = (%v, %v), want context.Canceled", ids, err)
	}
	if ids != nil {
		t.Fatalf("cancelled query returned results %v", ids)
	}
	// "Promptly": a pre-cancelled query must not pay for a full scan. The
	// bound is generous (entry check fires before any matching) so slow CI
	// machines do not flake.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled query took %v", elapsed)
	}
}

func TestQueryContextDeadline(t *testing.T) {
	docs := largeCorpus(t, 128)
	ix := buildCS(t, docs, Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := ix.QueryContext(ctx, query.MustParse("//A"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline query = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryWithContextVerify(t *testing.T) {
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}}
	ix := buildCS(t, docs, Options{KeepDocuments: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ix.QueryWithContext(ctx, query.MustParse("/P/D/L[text='boston']"), QueryOptions{Verify: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("verified query on cancelled ctx = %v", err)
	}
}
