package index

import (
	"bytes"
	"math/rand"
	"testing"

	"xseq/internal/xmltree"
)

func TestCheckInvariantsHealthy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var docs []*xmltree.Document
	for i := 0; i < 50; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("healthy index failed check: %v", err)
	}
	// A loaded index passes too.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatalf("loaded index failed check: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Index {
		return buildCS(t, []*xmltree.Document{
			{ID: 0, Root: xmltree.Figure1()},
			{ID: 1, Root: xmltree.Figure4D()},
		}, Options{})
	}
	corruptions := []struct {
		name string
		mut  func(ix *Index)
	}{
		{"inverted interval", func(ix *Index) {
			for p, link := range ix.links {
				link[0].max = link[0].pre - 1
				ix.links[p] = link
				return
			}
		}},
		{"unsorted link", func(ix *Index) {
			for p, link := range ix.links {
				if len(link) >= 2 {
					link[0].pre = link[1].pre
					ix.links[p] = link
					return
				}
			}
		}},
		{"forward anc", func(ix *Index) {
			for p, link := range ix.links {
				link[0].anc = int32(len(link))
				ix.links[p] = link
				return
			}
		}},
		{"end offsets broken", func(ix *Index) {
			if len(ix.ends.offs) > 0 {
				ix.ends.offs[0] = 7
			}
		}},
		{"doc id out of range", func(ix *Index) {
			if len(ix.ends.ids) > 0 {
				ix.ends.ids[0] = ix.maxDocID + 5
			}
		}},
		{"serial out of range", func(ix *Index) {
			ix.maxSerial = 1
		}},
	}
	for _, c := range corruptions {
		ix := build()
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("%s: pre-corruption check failed: %v", c.name, err)
		}
		c.mut(ix)
		if err := ix.CheckInvariants(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}
