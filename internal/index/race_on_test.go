//go:build race

package index

// raceEnabled gates allocation-count assertions: the race detector makes
// sync.Pool drop items at random (to shake out reuse races), so pooled
// scratch is sometimes rebuilt and AllocsPerRun readings are inflated by a
// few allocations. The pool-reuse hammers still run under -race; only the
// exact-count checks are skipped.
const raceEnabled = true
