package index

import (
	"math/rand"
	"testing"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func TestQueryStatsCounters(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure3a()},
	}
	ix := buildCS(t, docs, Options{})
	var st QueryStats
	got, err := ix.QueryWith(query.MustParse("//L[text='boston']"), QueryOptions{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1}) {
		t.Fatalf("results = %v", got)
	}
	if st.Instances == 0 || st.Orders == 0 {
		t.Fatalf("instances/orders = %d/%d", st.Instances, st.Orders)
	}
	if st.LinkProbes == 0 || st.EntriesScanned == 0 {
		t.Fatalf("probes/scanned = %d/%d", st.LinkProbes, st.EntriesScanned)
	}
	if st.Results != 2 {
		t.Fatalf("Results = %d", st.Results)
	}
}

func TestQueryStatsCoverRejections(t *testing.T) {
	// Figure 4: the constraint must reject the false-alarm candidate, and
	// the rejection is visible in the counters.
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure4D()}}
	ix := buildCS(t, docs, Options{})
	var st QueryStats
	got, err := ix.QueryWith(query.MustParse("/P/L[S][B]"), QueryOptions{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("results = %v", got)
	}
	if st.CoverChecks == 0 || st.CoverRejections == 0 {
		t.Fatalf("cover checks/rejections = %d/%d", st.CoverChecks, st.CoverRejections)
	}
	// Naive mode performs no cover checks.
	var naive QueryStats
	if _, err := ix.QueryWith(query.MustParse("/P/L[S][B]"), QueryOptions{Naive: true, Stats: &naive}); err != nil {
		t.Fatal(err)
	}
	if naive.CoverChecks != 0 {
		t.Fatalf("naive cover checks = %d", naive.CoverChecks)
	}
}

func TestMaxResults(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var docs []*xmltree.Document
	for i := 0; i < 80; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})
	pat := query.MustParse("//A")
	all, err := ix.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Skipf("corpus too sparse for the limit test: %d matches", len(all))
	}
	capped, err := ix.QueryWith(pat, QueryOptions{MaxResults: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 5 {
		t.Fatalf("capped results = %d", len(capped))
	}
	// Every capped id is a true answer.
	set := map[int32]bool{}
	for _, id := range all {
		set[id] = true
	}
	for _, id := range capped {
		if !set[id] {
			t.Fatalf("capped id %d is not an answer", id)
		}
	}
	// A limit above the answer count returns everything.
	loose, err := ix.QueryWith(pat, QueryOptions{MaxResults: len(all) + 10})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(loose, all) {
		t.Fatal("loose limit changed answers")
	}
}

func TestMaxResultsReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var docs []*xmltree.Document
	for i := 0; i < 300; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})
	pat := query.MustParse("//B")
	var full, capped QueryStats
	if _, err := ix.QueryWith(pat, QueryOptions{Stats: &full}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QueryWith(pat, QueryOptions{MaxResults: 3, Stats: &capped}); err != nil {
		t.Fatal(err)
	}
	if capped.EntriesScanned >= full.EntriesScanned {
		t.Fatalf("limit did not reduce scanning: %d vs %d", capped.EntriesScanned, full.EntriesScanned)
	}
}
