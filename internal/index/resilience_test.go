// Resilience tests drive the index through injected failures — torn writes,
// truncated and bit-flipped load streams, builders that error or panic
// mid-compaction — and check that every path degrades into a typed error
// while serving state stays intact. They live in the external test package
// because faultio imports index.
package index_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xseq/internal/faultio"
	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// buildProbabilityIndex infers a schema per build and returns a
// probability-strategy index, the way the xseq facade's builders do.
// (The dynamic-engine resilience tests, which wrap this in faultio's flaky
// builders, live in internal/engine.)
func buildProbabilityIndex(ctx context.Context, docs []*xmltree.Document) (*index.Index, error) {
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		return nil, err
	}
	enc := pathenc.NewEncoder(1 << 20)
	return index.BuildContext(ctx, docs, index.Options{Encoder: enc, Strategy: sequence.NewProbability(sch, enc)})
}

func resilienceCorpus(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	labels := []string{"A", "B", "C"}
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		root := xmltree.NewElem("R")
		for k := 0; k <= rng.Intn(3); k++ {
			child := xmltree.NewElem(labels[rng.Intn(len(labels))])
			if rng.Intn(2) == 0 {
				child.Children = append(child.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
			}
			root.Children = append(root.Children, child)
		}
		docs[i] = &xmltree.Document{ID: int32(i), Root: root}
	}
	return docs
}

func mustBuild(t testing.TB, docs []*xmltree.Document) *index.Index {
	t.Helper()
	ix, err := buildProbabilityIndex(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func mustSave(t testing.TB, ix *index.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveFailingWriterSurfacesError(t *testing.T) {
	ix := mustBuild(t, resilienceCorpus(t, 10))
	full := int64(len(mustSave(t, ix)))
	for _, limit := range []int64{0, 1, 8, 16, full / 2, full - 1} {
		fw := &faultio.FailingWriter{W: &bytes.Buffer{}, Limit: limit}
		if err := ix.Save(fw); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("Save with write failure at %d bytes = %v, want injected error", limit, err)
		}
	}
}

func TestLoadTruncatedV2Stream(t *testing.T) {
	ix := mustBuild(t, resilienceCorpus(t, 10))
	data := mustSave(t, ix)
	n := int64(len(data))
	for _, limit := range []int64{0, 4, 8, 12, 16, 17, n / 2, n - 4, n - 1} {
		tr := &faultio.TruncatingReader{R: bytes.NewReader(data), Limit: limit}
		_, err := index.Load(tr)
		if err == nil {
			t.Fatalf("Load of stream truncated at %d bytes succeeded", limit)
		}
		var ce *index.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d bytes: %v is not a *CorruptError", limit, err)
		}
	}
	// A TruncatingWriter is the write-side twin: a torn SaveFile artifact.
	torn := &bytes.Buffer{}
	if err := ix.Save(&faultio.TruncatingWriter{W: torn, Limit: n / 3}); err != nil {
		t.Fatal(err)
	}
	var ce *index.CorruptError
	if _, err := index.Load(bytes.NewReader(torn.Bytes())); !errors.As(err, &ce) {
		t.Fatalf("torn-write stream: %v is not a *CorruptError", err)
	}
}

func TestLoadBitFlippedStream(t *testing.T) {
	ix := mustBuild(t, resilienceCorpus(t, 10))
	data := mustSave(t, ix)
	bits := len(data) * 8
	// Hit the magic, the length field, early/middle/late payload, and the
	// checksum trailer.
	positions := []int{0, 8 * 9, 8 * 20, bits / 2, bits - 40, bits - 1}
	for i := 0; i < bits; i += bits / 37 {
		positions = append(positions, i)
	}
	for _, i := range positions {
		_, err := index.Load(bytes.NewReader(faultio.FlipBit(data, i)))
		if err == nil {
			t.Fatalf("Load of stream with bit %d flipped succeeded", i)
		}
		var ce *index.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit %d: %v is not a *CorruptError", i, err)
		}
	}
}

func TestSaveFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.xseqidx")
	good := mustBuild(t, resilienceCorpus(t, 10))
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A depth-first index is not saveable; the failed SaveFile must leave
	// the existing file byte-identical and no temp files behind.
	enc := pathenc.NewEncoder(0)
	df, err := index.Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}},
		index.Options{Encoder: enc, Strategy: sequence.DepthFirst{Enc: enc}})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SaveFile(path); err == nil {
		t.Fatal("saving a DF index should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed SaveFile modified the existing file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
	back, err := index.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDocuments() != good.NumDocuments() {
		t.Fatalf("reloaded docs = %d want %d", back.NumDocuments(), good.NumDocuments())
	}
}
