// Resilience tests drive the index through injected failures — torn writes,
// truncated and bit-flipped load streams, builders that error or panic
// mid-compaction — and check that every path degrades into a typed error
// while serving state stays intact. They live in the external test package
// because faultio imports index.
package index_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xseq/internal/faultio"
	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// csBuilder infers a schema per build and returns a probability-strategy
// index, the way the xseq facade's dynamic builder does.
func csBuilder() index.Builder {
	return func(ctx context.Context, docs []*xmltree.Document) (*index.Index, error) {
		roots := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			roots[i] = d.Root
		}
		sch, err := schema.Infer(roots)
		if err != nil {
			return nil, err
		}
		enc := pathenc.NewEncoder(1 << 20)
		return index.BuildContext(ctx, docs, index.Options{Encoder: enc, Strategy: sequence.NewProbability(sch, enc)})
	}
}

func resilienceCorpus(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	labels := []string{"A", "B", "C"}
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		root := xmltree.NewElem("R")
		for k := 0; k <= rng.Intn(3); k++ {
			child := xmltree.NewElem(labels[rng.Intn(len(labels))])
			if rng.Intn(2) == 0 {
				child.Children = append(child.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
			}
			root.Children = append(root.Children, child)
		}
		docs[i] = &xmltree.Document{ID: int32(i), Root: root}
	}
	return docs
}

func mustBuild(t testing.TB, docs []*xmltree.Document) *index.Index {
	t.Helper()
	ix, err := csBuilder()(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func mustSave(t testing.TB, ix *index.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSaveFailingWriterSurfacesError(t *testing.T) {
	ix := mustBuild(t, resilienceCorpus(t, 10))
	full := int64(len(mustSave(t, ix)))
	for _, limit := range []int64{0, 1, 8, 16, full / 2, full - 1} {
		fw := &faultio.FailingWriter{W: &bytes.Buffer{}, Limit: limit}
		if err := ix.Save(fw); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("Save with write failure at %d bytes = %v, want injected error", limit, err)
		}
	}
}

func TestLoadTruncatedV2Stream(t *testing.T) {
	ix := mustBuild(t, resilienceCorpus(t, 10))
	data := mustSave(t, ix)
	n := int64(len(data))
	for _, limit := range []int64{0, 4, 8, 12, 16, 17, n / 2, n - 4, n - 1} {
		tr := &faultio.TruncatingReader{R: bytes.NewReader(data), Limit: limit}
		_, err := index.Load(tr)
		if err == nil {
			t.Fatalf("Load of stream truncated at %d bytes succeeded", limit)
		}
		var ce *index.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d bytes: %v is not a *CorruptError", limit, err)
		}
	}
	// A TruncatingWriter is the write-side twin: a torn SaveFile artifact.
	torn := &bytes.Buffer{}
	if err := ix.Save(&faultio.TruncatingWriter{W: torn, Limit: n / 3}); err != nil {
		t.Fatal(err)
	}
	var ce *index.CorruptError
	if _, err := index.Load(bytes.NewReader(torn.Bytes())); !errors.As(err, &ce) {
		t.Fatalf("torn-write stream: %v is not a *CorruptError", err)
	}
}

func TestLoadBitFlippedStream(t *testing.T) {
	ix := mustBuild(t, resilienceCorpus(t, 10))
	data := mustSave(t, ix)
	bits := len(data) * 8
	// Hit the magic, the length field, early/middle/late payload, and the
	// checksum trailer.
	positions := []int{0, 8 * 9, 8 * 20, bits / 2, bits - 40, bits - 1}
	for i := 0; i < bits; i += bits / 37 {
		positions = append(positions, i)
	}
	for _, i := range positions {
		_, err := index.Load(bytes.NewReader(faultio.FlipBit(data, i)))
		if err == nil {
			t.Fatalf("Load of stream with bit %d flipped succeeded", i)
		}
		var ce *index.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit %d: %v is not a *CorruptError", i, err)
		}
	}
}

func TestSaveFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.xseqidx")
	good := mustBuild(t, resilienceCorpus(t, 10))
	if err := good.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A depth-first index is not saveable; the failed SaveFile must leave
	// the existing file byte-identical and no temp files behind.
	enc := pathenc.NewEncoder(0)
	df, err := index.Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}},
		index.Options{Encoder: enc, Strategy: sequence.DepthFirst{Enc: enc}})
	if err != nil {
		t.Fatal(err)
	}
	if err := df.SaveFile(path); err == nil {
		t.Fatal("saving a DF index should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed SaveFile modified the existing file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
	back, err := index.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDocuments() != good.NumDocuments() {
		t.Fatalf("reloaded docs = %d want %d", back.NumDocuments(), good.NumDocuments())
	}
}

func TestDynamicCompactionFailureKeepsServing(t *testing.T) {
	docs := resilienceCorpus(t, 6)
	// Call 1: initial build. Call 2: lazy delta. Call 3: the explicit
	// Compact — the one that fails. Call 4: the retry, which succeeds.
	b := faultio.FlakyBuilderN(csBuilder(), 3, 3, nil)
	d, err := index.NewDynamic(b, docs[:4], 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs[4:] {
		if err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	pat := query.MustParse("//A")
	before, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}

	cerr := d.Compact()
	if cerr == nil {
		t.Fatal("compaction should have failed")
	}
	var ce *index.CompactionError
	if !errors.As(cerr, &ce) {
		t.Fatalf("%v is not a *CompactionError", cerr)
	}
	if !errors.Is(cerr, faultio.ErrInjected) {
		t.Fatalf("%v does not wrap the injected error", cerr)
	}
	if ce.Docs != 6 {
		t.Fatalf("CompactionError.Docs = %d want 6", ce.Docs)
	}
	if d.LastCompactionError() == nil {
		t.Fatal("LastCompactionError should report the failure")
	}
	if d.PendingDocuments() != 2 {
		t.Fatalf("pending after failed compact = %d want 2", d.PendingDocuments())
	}

	after, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInt32s(before, after) {
		t.Fatalf("failed compaction changed answers: %v -> %v", before, after)
	}

	// The builder has recovered; the retry folds everything in.
	if err := d.Compact(); err != nil {
		t.Fatalf("retry compaction failed: %v", err)
	}
	if d.PendingDocuments() != 0 || d.LastCompactionError() != nil {
		t.Fatalf("retry left pending=%d lastErr=%v", d.PendingDocuments(), d.LastCompactionError())
	}
	final, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInt32s(before, final) {
		t.Fatalf("successful compaction changed answers: %v -> %v", before, final)
	}
}

func TestDynamicBuilderPanicContained(t *testing.T) {
	inner := csBuilder()
	calls := faultio.After(2)
	b := func(ctx context.Context, docs []*xmltree.Document) (*index.Index, error) {
		// Panic on exactly the second call (the compaction below).
		if calls.Hit() && calls.Hits() == 2 {
			panic("injected builder panic")
		}
		return inner(ctx, docs)
	}
	docs := resilienceCorpus(t, 5)
	d, err := index.NewDynamic(b, docs[:4], 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(docs[4]); err != nil {
		t.Fatal(err)
	}
	cerr := d.CompactContext(context.Background())
	if cerr == nil {
		t.Fatal("panicking compaction should surface an error")
	}
	var ce *index.CompactionError
	if !errors.As(cerr, &ce) {
		t.Fatalf("%v is not a *CompactionError", cerr)
	}
	if !strings.Contains(cerr.Error(), "panic") {
		t.Fatalf("error %v does not mention the panic", cerr)
	}
	// Serving state is untouched: the main index still answers, the
	// buffered document is still pending, and the recovered builder (call 3)
	// lets queries and compaction proceed.
	if d.Main() == nil || d.PendingDocuments() != 1 {
		t.Fatalf("serving state disturbed: main=%v pending=%d", d.Main(), d.PendingDocuments())
	}
	if _, err := d.Query(query.MustParse("//A")); err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("compaction after contained panic: %v", err)
	}
}

func TestDynamicAutoCompactRetryAtWatermark(t *testing.T) {
	// The first auto-compaction (buffer hits threshold 2) fails; the next
	// attempt happens only once the buffer has grown by another threshold.
	b := faultio.FlakyBuilderN(csBuilder(), 1, 1, nil)
	d, err := index.NewDynamic(b, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	docs := resilienceCorpus(t, 4)
	if err := d.Insert(docs[0]); err != nil {
		t.Fatal(err)
	}
	err = d.Insert(docs[1]) // buffer reaches 2: auto-compaction fires and fails
	var ce *index.CompactionError
	if !errors.As(err, &ce) {
		t.Fatalf("failed auto-compaction returned %v, want *CompactionError", err)
	}
	if d.PendingDocuments() != 2 || d.NumDocuments() != 2 {
		t.Fatalf("after failure: pending=%d docs=%d", d.PendingDocuments(), d.NumDocuments())
	}
	if err := d.Insert(docs[2]); err != nil { // 3 < watermark 4: no attempt
		t.Fatalf("insert below watermark should not retry: %v", err)
	}
	if err := d.Insert(docs[3]); err != nil { // 4 >= watermark: retry succeeds
		t.Fatalf("watermark retry failed: %v", err)
	}
	if d.PendingDocuments() != 0 || d.LastCompactionError() != nil {
		t.Fatalf("after retry: pending=%d lastErr=%v", d.PendingDocuments(), d.LastCompactionError())
	}
}

// TestDynamicConcurrentFlakyCompaction is the regression test for serving
// consistency: with inserts and queries racing while the builder fails a
// window of calls, no query may ever observe a half-compacted state —
// results are always sorted, duplicate-free document ids from the inserted
// universe, and errors are only the injected fault. Run under -race.
func TestDynamicConcurrentFlakyCompaction(t *testing.T) {
	const total = 24
	docs := resilienceCorpus(t, total)
	b := faultio.FlakyBuilderN(csBuilder(), 3, 4, nil)
	d, err := index.NewDynamic(b, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	pat := query.MustParse("//A")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, doc := range docs {
			if err := d.InsertContext(context.Background(), doc); err != nil {
				if !errors.Is(err, faultio.ErrInjected) {
					t.Errorf("unexpected insert error: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 60; k++ {
			ids, err := d.QueryContext(context.Background(), pat)
			if err != nil {
				if !errors.Is(err, faultio.ErrInjected) {
					t.Errorf("unexpected query error: %v", err)
					return
				}
				continue
			}
			for i := range ids {
				if ids[i] < 0 || ids[i] >= total {
					t.Errorf("query returned id %d outside the corpus", ids[i])
					return
				}
				if i > 0 && ids[i] <= ids[i-1] {
					t.Errorf("query results unsorted or duplicated: %v", ids)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.NumDocuments() != total {
		t.Fatalf("docs = %d want %d", d.NumDocuments(), total)
	}
	// The fault window is long past: compaction succeeds and the final
	// answer matches a fresh from-scratch index over the same corpus.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mustBuild(t, docs).Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInt32s(got, want) {
		t.Fatalf("post-storm answers diverge: got %v want %v", got, want)
	}
}

// TestDynamicCompactionCounters checks the success/failure tallies that
// back DynamicIndex.Health: failed attempts and successful compactions
// count independently, and a success clears the sticky error but not the
// history.
func TestDynamicCompactionCounters(t *testing.T) {
	docs := resilienceCorpus(t, 6)
	// Call 1: initial build. Call 2: lazy delta. Call 3: failed Compact.
	// Call 4: retried Compact, succeeds.
	b := faultio.FlakyBuilderN(csBuilder(), 3, 3, nil)
	d, err := index.NewDynamic(b, docs[:4], 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 0 || d.FailedCompactions() != 0 {
		t.Fatalf("fresh counters = %d/%d", d.Compactions(), d.FailedCompactions())
	}
	for _, doc := range docs[4:] {
		if err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Query(query.MustParse("//A")); err != nil {
		t.Fatal(err)
	}
	if d.Compact() == nil {
		t.Fatal("compaction should have failed")
	}
	if d.Compactions() != 0 || d.FailedCompactions() != 1 {
		t.Fatalf("post-failure counters = %d/%d", d.Compactions(), d.FailedCompactions())
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 1 || d.FailedCompactions() != 1 {
		t.Fatalf("post-success counters = %d/%d", d.Compactions(), d.FailedCompactions())
	}
	if d.LastCompactionError() != nil {
		t.Fatal("success must clear the sticky error")
	}
	// An empty-buffer Compact is a no-op, not a counted compaction.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 1 {
		t.Fatalf("no-op compact counted: %d", d.Compactions())
	}
}
