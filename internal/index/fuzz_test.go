package index

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// savedStream builds a small index and returns its v2 Save stream.
func savedStream(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var docs []*xmltree.Document
	for i := 0; i < 8; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 3, 3)})
	}
	docs = append(docs, &xmltree.Document{ID: 8, Root: xmltree.Figure1()})
	ix := buildCS(t, docs, Options{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoad drives Load with mutated Save streams: every input must yield an
// index or an error, never a panic, and an accepted index must pass its own
// invariant check and answer a query.
func FuzzLoad(f *testing.F) {
	data := savedStream(f)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(data[:17])
	f.Add(data[:8])
	f.Add([]byte("XSEQIDX2"))
	f.Add([]byte("garbage that is clearly not an index"))
	f.Add([]byte{})
	// A few deterministic single-bit corruptions in header, payload, trailer.
	for _, i := range []int{0, 70, 8 * 20, 8 * (len(data) - 2)} {
		flipped := append([]byte(nil), data...)
		flipped[(i/8)%len(flipped)] ^= 1 << (i % 8)
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		ix, err := Load(bytes.NewReader(stream))
		if err != nil {
			return
		}
		if ix == nil {
			t.Fatal("nil index with nil error")
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("accepted index violates invariants: %v", err)
		}
		if _, err := ix.Query(query.MustParse("//A")); err != nil {
			t.Fatalf("accepted index cannot answer a query: %v", err)
		}
	})
}

// TestLoadV1Compat re-encodes a current payload as a legacy v1 stream (bare
// gob, no header or checksum) and checks Load still accepts it and answers
// queries identically.
func TestLoadV1Compat(t *testing.T) {
	data := savedStream(t)
	// Strip the v2 framing: magic+length header (16 bytes) and CRC trailer
	// (4 bytes) leave the bare gob payload.
	payload := data[16 : len(data)-4]
	var p persistedIndex
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		t.Fatal(err)
	}
	p.Version = 1
	var v1 bytes.Buffer
	if err := gob.NewEncoder(&v1).Encode(&p); err != nil {
		t.Fatal(err)
	}
	legacy, err := Load(&v1)
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	current, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//A", "/R[A][B]", "//L[text='boston']"} {
		pat := query.MustParse(q)
		want, err := current.Query(pat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := legacy.Query(pat)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("query %s: v1 %v, v2 %v", q, got, want)
		}
	}
}
