// Zero-allocation query kernel support: one pooled scratch object carries
// every transient buffer Algorithm 1 needs — the sibling-cover ins stack,
// the epoch-stamped doc-id dedup array, the terminal-range doc-id
// collection buffer, the result accumulation buffer, and the wildcard
// instantiation scratch — so a steady-state query on a warm index performs
// a small fixed number of allocations regardless of corpus size or
// candidate count.
//
// The dedup array is epoch-stamped instead of cleared: stamp[id] == epoch
// means "id already in this query's result". Opening a new query bumps the
// epoch, which invalidates every stamp in O(1); the array is only zeroed
// when the uint32 epoch wraps (once per ~4 billion queries through a given
// scratch). This replaces the make([]bool, maxDocID+1) the result set used
// to allocate per query — O(corpus) memory traffic on every operation.
//
// Ownership rule (the engine/qcache boundary contract): everything inside a
// scratch is borrowed and returns to the pool when the query finishes, so
// no pooled buffer may escape into a query's return value. The result set
// copies its ids into a fresh slice before the scratch is released; see
// resultSet.take.
package index

import (
	"sync"

	"xseq/internal/query"
)

// queryScratch is the reusable per-query working set; zero value ready.
type queryScratch struct {
	ins    []insEntry    // sibling-cover stack (search.go)
	stamp  []uint32      // doc-id dedup: stamp[id] == epoch means seen
	epoch  uint32        // current dedup epoch
	docBuf []int32       // collectDocs buffer for terminal ranges
	ids    []int32       // result accumulation buffer
	inst   query.Scratch // wildcard-instantiation buffers
	tstats QueryStats    // kernel counters for a context-borne trace
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// getScratch fetches a scratch whose stamp array covers doc ids in
// [0, maxID] and opens a fresh dedup epoch.
func getScratch(maxID int32) *queryScratch {
	s := scratchPool.Get().(*queryScratch)
	if n := int(maxID) + 1; len(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: every stale stamp is ambiguous, clear once
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

// putScratch returns s to the pool. Buffer capacities are kept (that is the
// point); lengths are irrelevant because every user reslices to [:0].
func putScratch(s *queryScratch) {
	scratchPool.Put(s)
}
