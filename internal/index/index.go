// Package index implements the paper's index structure (Section 4.1) and its
// constraint subsequence matching (Section 4.2, Algorithm 1):
//
//   - Sequence Insertion: each document's constraint sequence goes into a
//     trie; document ids accumulate at end nodes.
//   - Tree Labeling: trie nodes get (n⊢, n⊣) interval labels.
//   - Path Linking: one horizontal link per distinct path, holding the
//     labels of all trie nodes with that path encoding, in ascending n⊢
//     order, binary searchable (Figures 8/9).
//
// Queries are tree patterns; wildcards are instantiated against the path
// table, instances are sequenced with the same strategy priority as the
// data, identical-path sibling groups are enumerated (the false-dismissal
// remedy), and Algorithm 1 walks the links range-by-range. The
// sibling-cover test (Definition 4 / Theorem 3) rejects candidates whose
// constraint relations would break, eliminating false alarms with no joins
// and no per-document post-processing.
package index

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"xseq/internal/engine"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/sequence"
	"xseq/internal/telemetry"
	"xseq/internal/trie"
	"xseq/internal/xmltree"
)

// Options configures Build.
type Options struct {
	// Encoder interns designators and paths; required, and must be the
	// encoder the Strategy was built with.
	Encoder *pathenc.Encoder
	// Strategy sequences documents. For querying it must also implement
	// sequence.Prioritizer (the probability strategy g_best does); index
	// building alone works with any strategy.
	Strategy sequence.Strategy
	// BulkLoad sorts sequences before insertion (static data path).
	BulkLoad bool
	// InstantiationLimit caps wildcard expansion per pattern
	// (<= 0: query.DefaultInstantiationLimit).
	InstantiationLimit int
	// OrderEnumerationLimit caps identical-sibling order enumeration per
	// instance (<= 0: DefaultOrderEnumerationLimit).
	OrderEnumerationLimit int
	// KeepDocuments retains the corpus for the verified query modes and
	// baselines that post-process candidates.
	KeepDocuments bool
}

// DefaultOrderEnumerationLimit caps the number of identical-sibling
// orderings tried per query instance.
const DefaultOrderEnumerationLimit = 64

// linkEntry is one element of a path link: an interval label plus the
// sibling-cover metadata. anc is the index (within the same link) of the
// entry's nearest same-path strict ancestor in the trie, or -1. embeds
// reports whether a later entry of the link names this entry as its anc —
// i.e. whether this trie node "embeds identical siblings" in the sense of
// Algorithm 1.
type linkEntry struct {
	pre, max int32
	anc      int32
	embeds   bool
}

// endList flattens doc-id lists: ends[i] holds the pre label of an end node
// and the [off, off+n) slice of docIDs.
type endList struct {
	pres []int32
	offs []int32
	lens []int32
	ids  []int32
}

// Index is a built, immutable sequence index over a corpus.
type Index struct {
	enc       *pathenc.Encoder
	strategy  sequence.Strategy
	prio      sequence.Prioritizer // nil if strategy has no priority
	tr        *trie.Trie
	links     map[pathenc.PathID][]linkEntry
	ends      endList
	ci        *pathenc.ChildIndex
	opts      Options
	numDocs   int
	maxDocID  int32
	maxSerial int32
	docs      []*xmltree.Document // only when KeepDocuments

	pg *pagedLayout // nil unless AttachPager was called
}

// Build sequences and indexes the corpus. Document IDs must be unique and
// non-negative. It is BuildContext with context.Background().
func Build(docs []*xmltree.Document, opts Options) (*Index, error) {
	return BuildContext(context.Background(), docs, opts)
}

// BuildContext is Build honouring ctx: cancellation is checked between
// documents, so a giant build can be aborted with bounded latency (one
// document's sequencing). On cancellation the ctx error is returned and the
// partially built state is discarded.
func BuildContext(ctx context.Context, docs []*xmltree.Document, opts Options) (*Index, error) {
	if opts.Encoder == nil {
		return nil, fmt.Errorf("index: Options.Encoder is required")
	}
	if opts.Strategy == nil {
		return nil, fmt.Errorf("index: Options.Strategy is required")
	}
	ix := &Index{
		enc:      opts.Encoder,
		strategy: opts.Strategy,
		tr:       trie.New(),
		opts:     opts,
	}
	if p, ok := opts.Strategy.(sequence.Prioritizer); ok {
		ix.prio = p
	}
	// Pre-scan: install the corpus repeat set so data and query sequencing
	// block the same paths (see sequence.RepeatAware).
	if ra, ok := opts.Strategy.(sequence.RepeatAware); ok {
		roots := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			roots[i] = d.Root
		}
		ra.SetRepeatPaths(sequence.RepeatPaths(roots, opts.Encoder))
	}
	seen := map[int32]bool{}
	seqs := make([]sequence.Sequence, 0, len(docs))
	ids := make([]int32, 0, len(docs))
	for _, d := range docs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d.ID < 0 {
			return nil, fmt.Errorf("index: negative document id %d", d.ID)
		}
		if seen[d.ID] {
			return nil, fmt.Errorf("index: duplicate document id %d", d.ID)
		}
		seen[d.ID] = true
		if d.ID > ix.maxDocID {
			ix.maxDocID = d.ID
		}
		s := opts.Strategy.Sequence(d.Root)
		if opts.BulkLoad {
			seqs = append(seqs, s)
			ids = append(ids, d.ID)
		} else {
			ix.tr.Insert(s, d.ID)
		}
	}
	if opts.BulkLoad {
		if err := ix.tr.BulkLoad(seqs, ids); err != nil {
			return nil, err
		}
	}
	ix.numDocs = len(docs)
	if opts.KeepDocuments {
		ix.docs = docs
	}
	ix.freeze()
	return ix, nil
}

// freeze labels the trie and builds the path links and the flattened doc-id
// lists.
func (ix *Index) freeze() {
	ix.tr.Freeze()
	ix.links = make(map[pathenc.PathID][]linkEntry)
	// One pre-order pass; per-path stacks of open link-entry indices give
	// each entry its nearest same-path ancestor. The walk is pre-order, so
	// link entries are appended in ascending pre order automatically.
	type open struct {
		entry int32 // index within the link
		max   int32 // subtree end, for popping
	}
	stacks := map[pathenc.PathID][]open{}
	ix.tr.WalkPreOrder(func(n trie.NodeID, _ int) bool {
		p := ix.tr.Path(n)
		pre, max := ix.tr.Pre(n), ix.tr.Max(n)
		st := stacks[p]
		// Pop entries whose subtree has ended.
		for len(st) > 0 && st[len(st)-1].max < pre {
			st = st[:len(st)-1]
		}
		link := ix.links[p]
		e := linkEntry{pre: pre, max: max, anc: -1}
		if len(st) > 0 {
			e.anc = st[len(st)-1].entry
			link[e.anc].embeds = true
		}
		idx := int32(len(link))
		ix.links[p] = append(link, e)
		stacks[p] = append(st, open{entry: idx, max: max})
		return true
	})
	// Flatten doc-id lists sorted by pre.
	type endNode struct {
		pre int32
		ids []int32
	}
	var ends []endNode
	total := 0
	ix.tr.WalkPreOrder(func(n trie.NodeID, _ int) bool {
		if ids := ix.tr.Docs(n); len(ids) > 0 {
			ends = append(ends, endNode{ix.tr.Pre(n), ids})
			total += len(ids)
		}
		return true
	})
	slices.SortFunc(ends, func(a, b endNode) int { return int(a.pre) - int(b.pre) })
	ix.ends.pres = make([]int32, len(ends))
	ix.ends.offs = make([]int32, len(ends))
	ix.ends.lens = make([]int32, len(ends))
	ix.ends.ids = make([]int32, 0, total)
	for i, e := range ends {
		ix.ends.pres[i] = e.pre
		ix.ends.offs[i] = int32(len(ix.ends.ids))
		ix.ends.lens[i] = int32(len(e.ids))
		ix.ends.ids = append(ix.ends.ids, e.ids...)
	}
	ix.ci = ix.enc.BuildChildIndex()
	ix.maxSerial = int32(ix.tr.NumNodes())
}

// Encoder returns the index's designator/path table.
func (ix *Index) Encoder() *pathenc.Encoder { return ix.enc }

// Strategy returns the sequencing strategy the index was built with.
func (ix *Index) Strategy() sequence.Strategy { return ix.strategy }

// NumDocuments reports the corpus size.
func (ix *Index) NumDocuments() int { return ix.numDocs }

// NumNodes reports the trie node count — the index-size metric of
// Figures 14/15 and Tables 5/6.
func (ix *Index) NumNodes() int { return int(ix.maxSerial) }

// NumLinks reports the number of distinct paths (horizontal links).
func (ix *Index) NumLinks() int { return len(ix.links) }

// LinkLength reports the number of labels in the link of path p.
func (ix *Index) LinkLength(p pathenc.PathID) int { return len(ix.links[p]) }

// EstimatedDiskBytes applies the paper's sizing formula for the final
// disk-based index: 4n + cN bytes with n the number of indexed records, N
// the trie node count, and c ≈ 8 (Section 6.2).
func (ix *Index) EstimatedDiskBytes() int64 {
	const c = 8
	return 4*int64(ix.numDocs) + c*int64(ix.NumNodes())
}

// Documents returns the retained corpus (nil unless KeepDocuments).
func (ix *Index) Documents() []*xmltree.Document { return ix.docs }

// Trie exposes the underlying trie for tests and size accounting. Indexes
// reconstructed by Load carry no trie (queries run off the links alone);
// the result is then nil.
func (ix *Index) Trie() *trie.Trie { return ix.tr }

// ChildIdx exposes the frozen path-table snapshot for query instantiation.
func (ix *Index) ChildIdx() *pathenc.ChildIndex { return ix.ci }

// MaxSerial returns the largest pre-order serial (the root's n⊣).
func (ix *Index) MaxSerial() int32 { return ix.maxSerial }

// LinkEntries returns the (pre, max) interval labels of path p's link in
// ascending pre order. Baseline engines (ViST-style branch matching) build
// on this; the slice must not be modified.
func (ix *Index) LinkEntries(p pathenc.PathID) []Interval {
	link := ix.links[p]
	out := make([]Interval, len(link))
	for i, e := range link {
		ix.touchLinkSlot(p, i)
		out[i] = Interval{Pre: e.pre, Max: e.max}
	}
	return out
}

// LinkEntriesInRange returns the link entries of p with pre ∈ [lo, hi],
// binary searching the link (charging page touches when paged).
func (ix *Index) LinkEntriesInRange(p pathenc.PathID, lo, hi int32) []Interval {
	link := ix.links[p]
	start := ix.searchLink(p, link, lo, nil)
	var out []Interval
	for idx := start; idx < len(link) && link[idx].pre <= hi; idx++ {
		ix.touchLinkSlot(p, idx)
		out = append(out, Interval{Pre: link[idx].pre, Max: link[idx].max})
	}
	return out
}

// DocsInPreRange returns (appending to out) the ids of documents whose
// sequences end at a node with pre ∈ [lo, hi].
func (ix *Index) DocsInPreRange(lo, hi int32, out []int32) []int32 {
	return ix.collectDocs(lo, hi, out)
}

// Interval is a trie node's (n⊢, n⊣) label pair.
type Interval struct {
	Pre, Max int32
}

// collectDocs appends the document ids of all end nodes with pre ∈ [lo,hi]
// — "output the document id lists of node v and all nodes under v".
func (ix *Index) collectDocs(lo, hi int32, out []int32) []int32 {
	i := sort.Search(len(ix.ends.pres), func(k int) bool { return ix.ends.pres[k] >= lo })
	for ; i < len(ix.ends.pres) && ix.ends.pres[i] <= hi; i++ {
		off, n := ix.ends.offs[i], ix.ends.lens[i]
		ix.touchDocRange(off, n)
		out = append(out, ix.ends.ids[off:off+n]...)
	}
	return out
}

// QueryOptions tweaks one query execution. The definition lives in
// internal/engine (the engine-agnostic query contract); the alias keeps
// index.QueryOptions as the spelling throughout this package and its
// callers.
type QueryOptions = engine.QueryOptions

// QueryStats reports the work one query performed — the observable
// counterpart of Algorithm 1's steps. Aliased from internal/engine; see
// QueryOptions.
type QueryStats = engine.QueryStats

// Shards reports per-partition statistics; a monolithic index has none.
func (ix *Index) Shards() []engine.ShardStat { return nil }

// Generation identifies the index's corpus snapshot. A frozen index never
// changes after build/load, so the generation is constant.
func (ix *Index) Generation() uint64 { return 0 }

var _ engine.Engine = (*Index)(nil)

// Query answers a tree-pattern query, returning matching document ids in
// ascending order. The semantics are designator-level: two values in the
// same hash bucket are indistinguishable (use QueryOptions.Verify for exact
// value semantics).
func (ix *Index) Query(pat *query.Pattern) ([]int32, error) {
	return ix.QueryWith(pat, QueryOptions{})
}

// QueryWith is Query with options. It is QueryWithContext with
// context.Background().
func (ix *Index) QueryWith(pat *query.Pattern, qo QueryOptions) ([]int32, error) {
	return ix.QueryWithContext(context.Background(), pat, qo)
}

// QueryContext is Query honouring ctx; see QueryWithContext.
func (ix *Index) QueryContext(ctx context.Context, pat *query.Pattern) ([]int32, error) {
	return ix.QueryWithContext(ctx, pat, QueryOptions{})
}

// QueryWithContext is QueryWith honouring ctx: cancellation is polled
// before each instance and, inside the match loops, every
// cancelCheckStride link-entry candidates, so even a runaway wildcard
// query over a large corpus aborts promptly. On cancellation the ctx error
// is returned and any partial result is discarded.
func (ix *Index) QueryWithContext(ctx context.Context, pat *query.Pattern, qo QueryOptions) ([]int32, error) {
	if ix.prio == nil {
		return nil, fmt.Errorf("index: strategy %q has no priority; constraint matching requires a prioritized strategy such as g_best", ix.strategy.Name())
	}
	if qo.Verify && ix.docs == nil {
		return nil, fmt.Errorf("index: Verify requires Options.KeepDocuments")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scr := getScratch(ix.maxDocID)
	defer putScratch(scr)
	// A context-borne trace observes the kernel counters without the caller
	// asking for stats: route them through the pooled scratch (so tracing
	// stays off the allocation budget) and merge into the trace on the way
	// out. When the caller did pass Stats the same numbers serve both.
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		if qo.Stats == nil {
			scr.tstats = QueryStats{}
			qo.Stats = &scr.tstats
		}
		st := qo.Stats
		defer func() {
			tr.AddKernel(st.Instances, st.Orders, st.LinkProbes, st.EntriesScanned, st.CoverChecks, st.CoverRejections)
		}()
	}
	insts := pat.InstantiateScratch(ix.enc, ix.ci, ix.opts.InstantiationLimit, &scr.inst)
	res := resultSet{scr: scr, ids: scr.ids[:0], limit: qo.MaxResults, stats: qo.Stats, ctx: ctx}
	enumLimit := ix.opts.OrderEnumerationLimit
	if enumLimit <= 0 {
		enumLimit = DefaultOrderEnumerationLimit
	}
	if qo.Stats != nil {
		qo.Stats.Instances = len(insts)
	}
	for _, inst := range insts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.full() {
			break
		}
		orders := sequence.EnumerateInstanceOrders(inst.Paths, inst.Parent, ix.prio, enumLimit)
		if qo.Stats != nil {
			qo.Stats.Orders += len(orders)
		}
		for _, q := range orders {
			if res.full() {
				break
			}
			ix.search(q, qo.Naive, &res)
		}
	}
	if res.err != nil {
		return nil, res.err
	}
	out := res.take()
	if qo.Stats != nil {
		qo.Stats.Results = len(out)
	}
	if qo.Verify {
		var err error
		out, err = ix.verifyCandidates(ctx, pat, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// verifyCandidates filters candidate ids by the ground-truth matcher,
// polling ctx between documents (tree-pattern embedding can be slow on
// pathological records).
func (ix *Index) verifyCandidates(ctx context.Context, pat *query.Pattern, cand []int32) ([]int32, error) {
	byID := make(map[int32]*xmltree.Document, len(ix.docs))
	for _, d := range ix.docs {
		byID[d.ID] = d
	}
	var out []int32
	for _, id := range cand {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d := byID[id]; d != nil && pat.MatchesTree(d.Root) {
			out = append(out, id)
		}
	}
	return out, nil
}

// cancelCheckStride is how many link-entry candidates the match loops visit
// between context polls — small enough for prompt aborts, large enough that
// the poll is invisible in query profiles.
const cancelCheckStride = 256

// resultSet deduplicates doc ids against the scratch's epoch-stamped array;
// an optional cap stops the search early (MaxResults), and a context aborts
// it (cancelled). ids borrows the scratch's accumulation buffer — take
// copies the final answer out and hands the grown buffer back, so nothing
// pooled escapes into the return value.
type resultSet struct {
	scr   *queryScratch
	ids   []int32
	limit int // 0: unlimited
	stats *QueryStats

	ctx       context.Context // nil: never cancelled
	err       error           // ctx error once observed
	countdown int             // candidates until the next ctx poll
}

// cancelled polls the context every cancelCheckStride calls; once the
// context is done it latches err and keeps returning true, which also makes
// full() true so every search loop unwinds.
func (r *resultSet) cancelled() bool {
	if r.err != nil {
		return true
	}
	if r.ctx == nil {
		return false
	}
	r.countdown--
	if r.countdown > 0 {
		return false
	}
	r.countdown = cancelCheckStride
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return true
	}
	return false
}

func (r *resultSet) full() bool {
	return r.err != nil || (r.limit > 0 && len(r.ids) >= r.limit)
}

func (r *resultSet) addAll(ids []int32) {
	stamp, epoch := r.scr.stamp, r.scr.epoch
	for _, id := range ids {
		if r.full() {
			return
		}
		if stamp[id] != epoch {
			stamp[id] = epoch
			r.ids = append(r.ids, id)
		}
	}
}

// take sorts the accumulated ids, copies them into a fresh caller-owned
// slice, and returns the accumulation buffer to the scratch for reuse. A
// query with no matches returns nil, as before.
func (r *resultSet) take() []int32 {
	slices.Sort(r.ids)
	var out []int32
	if len(r.ids) > 0 {
		out = make([]int32, len(r.ids))
		copy(out, r.ids)
	}
	r.scr.ids = r.ids[:0]
	return out
}
