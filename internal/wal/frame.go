// Package wal implements the crash-safe write-ahead log behind durable
// dynamic ingestion: an append-only file of framed, checksummed entries
// with monotonically increasing sequence numbers. Every inserted document
// is appended here (and fsynced, batched over a configurable group-commit
// window) before it is applied to the in-memory delta, so a crash or
// kill -9 loses nothing that was acknowledged: on startup the log is
// replayed, truncating at the first torn or checksum-bad tail entry by
// default (failing hard in strict mode).
//
// The same framed entries stream over HTTP to follower replicas — the log
// of diffs is the source of truth for replication as well as recovery —
// so the framing is defined once here and shared by the file layer, the
// primary's /wal endpoint, and the follower's stream reader.
//
// On-disk format v1:
//
//	offset  size  field
//	0       8     file magic "XSEQWAL1"
//	8       8     base sequence number, big-endian uint64: every entry in
//	              this file has seq > base (entries <= base were rotated
//	              into a checkpoint snapshot)
//	16      4     CRC-32 (IEEE) of bytes 0..16, big-endian uint32
//	20      ...   entries
//
// Each entry:
//
//	offset  size  field
//	0       4     entry magic "xWL1"
//	4       8     sequence number, big-endian uint64
//	12      4     payload length, big-endian uint32
//	16      n     payload (an encoded document)
//	16+n    4     CRC-32 (IEEE) of bytes 4..16+n (seq, length, payload)
//
// Sequence numbers are strictly increasing within a file; the primary's
// appends are contiguous (+1), and a follower persists the primary's
// numbers verbatim. Truncation is caught by short frames, bit flips by
// the per-entry checksum, and reordering or duplication by the sequence
// monotonicity check; every violation is reported as a *CorruptError.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// fileMagic opens every WAL file.
var fileMagic = [8]byte{'X', 'S', 'E', 'Q', 'W', 'A', 'L', '1'}

// entryMagic opens every entry frame ("xWL1" big-endian).
const entryMagic uint32 = 0x78574c31

const (
	// headerSize is the file header length: magic + base seq + CRC.
	headerSize = 8 + 8 + 4
	// entryOverhead is the framing cost per entry: magic + seq + length
	// before the payload, CRC after it.
	entryOverhead = 4 + 8 + 4 + 4
	// MaxPayload bounds one entry's payload — a sanity cap against corrupt
	// or hostile length fields, far above any real document.
	MaxPayload = 1 << 30
)

// ErrIncomplete reports a frame cut short — more bytes could complete it.
// During file replay it marks the torn tail a crash mid-append leaves
// behind; on a network stream it marks a connection cut mid-entry.
var ErrIncomplete = errors.New("wal: incomplete entry")

// CorruptError reports a WAL file or stream that failed validation:
// unrecognized magic, checksum mismatch, a hostile length field, or
// sequence numbers that go backwards. Detect it with errors.As.
type CorruptError struct {
	// Path is the file concerned, "" for network streams.
	Path string
	// Offset is the byte offset of the bad frame, -1 when unknown.
	Offset int64
	// Reason is a short human-readable diagnosis.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

func (e *CorruptError) Error() string {
	msg := "wal: corrupt log"
	if e.Path != "" {
		msg += " " + e.Path
	}
	if e.Offset >= 0 {
		msg += fmt.Sprintf(" at offset %d", e.Offset)
	}
	msg += ": " + e.Reason
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *CorruptError) Unwrap() error { return e.Err }

// encodeHeader renders the 20-byte file header for baseSeq.
func encodeHeader(baseSeq uint64) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, fileMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], baseSeq)
	binary.BigEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(hdr[:16]))
	return hdr
}

// decodeHeader validates a file header and returns its base sequence
// number. The header is never truncate-recoverable: a file whose first 20
// bytes cannot be trusted has no interpretable entries at all.
func decodeHeader(hdr []byte) (uint64, error) {
	if len(hdr) < headerSize {
		return 0, &CorruptError{Offset: 0, Reason: "truncated file header"}
	}
	if [8]byte(hdr[:8]) != fileMagic {
		return 0, &CorruptError{Offset: 0, Reason: "bad file magic"}
	}
	if crc32.ChecksumIEEE(hdr[:16]) != binary.BigEndian.Uint32(hdr[16:20]) {
		return 0, &CorruptError{Offset: 0, Reason: "file header checksum mismatch"}
	}
	return binary.BigEndian.Uint64(hdr[8:16]), nil
}

// AppendEntry appends the framed entry (seq, payload) to buf and returns
// the extended slice — the encoding used on disk and on the wire.
func AppendEntry(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], entryMagic)
	binary.BigEndian.PutUint64(hdr[4:], seq)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// entrySize is the framed length of a payload of n bytes.
func entrySize(n int) int { return entryOverhead + n }

// DecodeEntry parses one framed entry from the front of b, returning its
// sequence number, its payload (aliasing b — copy before retaining), and
// the bytes consumed. A frame that could be completed by more bytes
// reports ErrIncomplete; an uninterpretable one reports *CorruptError.
func DecodeEntry(b []byte) (seq uint64, payload []byte, n int, err error) {
	if len(b) < 16 {
		return 0, nil, 0, ErrIncomplete
	}
	if binary.BigEndian.Uint32(b) != entryMagic {
		return 0, nil, 0, &CorruptError{Offset: -1, Reason: "bad entry magic"}
	}
	seq = binary.BigEndian.Uint64(b[4:])
	length := binary.BigEndian.Uint32(b[12:])
	if length > MaxPayload {
		return 0, nil, 0, &CorruptError{Offset: -1, Reason: fmt.Sprintf("entry length %d exceeds cap", length)}
	}
	total := entrySize(int(length))
	if len(b) < total {
		return 0, nil, 0, ErrIncomplete
	}
	payload = b[16 : 16+length]
	crc := crc32.ChecksumIEEE(b[4:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.BigEndian.Uint32(b[16+length:]) {
		return 0, nil, 0, &CorruptError{Offset: -1, Reason: "entry checksum mismatch"}
	}
	return seq, payload, total, nil
}
