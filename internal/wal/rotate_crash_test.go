package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"xseq/internal/faultio"
)

// TestRotateCrashBetweenRenameAndDirSync drives a crash into Rotate's
// narrowest window: the staged new log has been renamed over the old one
// but the directory fsync has not happened. Depending on whether the
// directory entry made it to disk, a restart sees either the complete old
// log or the complete new log — the test replays both on-disk images and
// asserts each one is a consistent prefix of history, never a torn hybrid.
func TestRotateCrashBetweenRenameAndDirSync(t *testing.T) {
	path := tmpWAL(t)
	w, _ := mustOpen(t, path, Options{})
	ctx := context.Background()
	for i := 1; i <= 10; i++ {
		if _, err := w.Append(ctx, []byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	// preImage is what a crash before the rename reaches disk leaves (the
	// old directory entry still pointing at the full log).
	preImage, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read pre-image: %v", err)
	}

	var postImage []byte
	testHookRotateAfterRename = func() error {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		postImage = b
		return faultio.ErrInjected
	}
	defer func() { testHookRotateAfterRename = nil }()

	if err := w.Rotate(6); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("Rotate with injected crash = %v, want ErrInjected", err)
	}
	// The aborted Rotate leaves the in-memory WAL describing a file that no
	// longer matches disk — a crashed process. Discard it like one.
	w.Close()
	if postImage == nil {
		t.Fatal("hook never captured the post-rename image")
	}

	cases := []struct {
		name      string
		image     []byte
		wantBase  uint64
		wantFirst uint64
		wantLast  uint64
	}{
		{"dir-entry-lost", preImage, 0, 1, 10},
		{"dir-entry-durable", postImage, 6, 7, 10},
	}
	for _, tc := range cases {
		for _, strict := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/strict=%v", tc.name, strict), func(t *testing.T) {
				p := tmpWAL(t)
				if err := os.WriteFile(p, tc.image, 0o644); err != nil {
					t.Fatalf("write image: %v", err)
				}
				var got []replayed
				w2, st := mustOpen(t, p, Options{Apply: collectApply(&got), Strict: strict})
				defer w2.Close()
				if st.TruncatedBytes != 0 {
					t.Fatalf("consistent image replayed with %d truncated bytes", st.TruncatedBytes)
				}
				if w2.BaseSeq() != tc.wantBase {
					t.Fatalf("base seq %d, want %d", w2.BaseSeq(), tc.wantBase)
				}
				wantN := int(tc.wantLast - tc.wantFirst + 1)
				if len(got) != wantN {
					t.Fatalf("replayed %d entries, want %d", len(got), wantN)
				}
				for i, e := range got {
					wantSeq := tc.wantFirst + uint64(i)
					wantPayload := fmt.Sprintf("entry-%d", wantSeq)
					if e.seq != wantSeq || string(e.payload) != wantPayload {
						t.Fatalf("entry %d = (%d, %q), want (%d, %q)",
							i, e.seq, e.payload, wantSeq, wantPayload)
					}
				}
			})
		}
	}
}

// TestResetStartsFreshLogAtBase exercises the follower re-seed primitive:
// Reset discards every entry, restarts the log at the snapshot's base, and
// keeps accepting appends above it.
func TestResetStartsFreshLogAtBase(t *testing.T) {
	path := tmpWAL(t)
	w, _ := mustOpen(t, path, Options{})
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if _, err := w.Append(ctx, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	if err := w.Reset(42); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	st := w.Stats()
	if st.BaseSeq != 42 || st.LastSeq != 42 || st.Entries != 0 {
		t.Fatalf("after Reset: base %d last %d entries %d, want 42/42/0",
			st.BaseSeq, st.LastSeq, st.Entries)
	}
	if w.SyncedSeq() != 42 {
		t.Fatalf("synced seq %d after Reset, want 42", w.SyncedSeq())
	}
	// The pre-reset history is gone: asking for it reports rotation, the
	// signal the serving layer turns into 410.
	if _, _, _, err := w.ReadFrames(3, 1<<20); !errors.Is(err, ErrRotated) {
		t.Fatalf("ReadFrames(3) after Reset = %v, want ErrRotated", err)
	}

	// Replication resumes right above the base.
	if err := w.AppendRecord(ctx, 43, []byte("new-43")); err != nil {
		t.Fatalf("append seq 43 after Reset: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got []replayed
	w2, st2 := mustOpen(t, path, Options{Apply: collectApply(&got), Strict: true})
	defer w2.Close()
	if w2.BaseSeq() != 42 || st2.Entries != 1 || st2.LastSeq != 43 {
		t.Fatalf("reopened: base %d entries %d last %d, want 42/1/43",
			w2.BaseSeq(), st2.Entries, st2.LastSeq)
	}
	if len(got) != 1 || got[0].seq != 43 || string(got[0].payload) != "new-43" {
		t.Fatalf("replayed %+v, want one entry (43, new-43)", got)
	}
}
