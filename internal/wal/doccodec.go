package wal

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"xseq/internal/xmltree"
)

// WAL payloads are self-contained gob encodings of the inserted document —
// the same serialization the snapshot format uses for retained corpora, so
// a replayed or replicated document is byte-for-byte the tree the primary
// indexed (no XML re-parse, no whitespace or entity drift). Each entry is
// independently decodable: the type definitions gob needs are carried per
// payload, which costs a few dozen bytes but lets replay resume at any
// entry and lets a follower join a stream mid-log.

// EncodeDocument renders doc as a WAL entry payload.
func EncodeDocument(doc *xmltree.Document) ([]byte, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("wal: nil document")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		return nil, fmt.Errorf("wal: encode document %d: %w", doc.ID, err)
	}
	return buf.Bytes(), nil
}

// DecodeDocument reconstructs a document from a WAL entry payload.
func DecodeDocument(payload []byte) (*xmltree.Document, error) {
	var doc xmltree.Document
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&doc); err != nil {
		return nil, &CorruptError{Offset: -1, Reason: "undecodable document payload", Err: err}
	}
	if doc.Root == nil {
		return nil, &CorruptError{Offset: -1, Reason: "document payload without a root"}
	}
	return &doc, nil
}
