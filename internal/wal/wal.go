package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed reports an operation on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// ErrRotated reports a ReadFrames request for sequence numbers that a
// checkpoint already rotated out of the log; the caller needs a snapshot,
// not the log. The primary's /wal endpoint maps it to 410 Gone.
var ErrRotated = errors.New("wal: requested entries rotated into a checkpoint")

// Options tunes Open.
type Options struct {
	// SyncWindow batches fsyncs (group commit): an append becomes durable —
	// and its WaitDurable returns — at the next window boundary, so under
	// concurrent load one fsync acknowledges a whole batch. 0 fsyncs on
	// every append (still batching naturally under contention: an append
	// whose bytes an earlier caller's fsync already covered skips its own).
	SyncWindow time.Duration
	// Strict makes Open fail with a *CorruptError on a torn or
	// checksum-bad tail instead of truncating the file at the tear.
	Strict bool
	// Apply, when non-nil, is called for every entry replayed during Open,
	// in sequence order. An Apply error aborts Open. The payload aliases a
	// scratch buffer — copy it before retaining.
	Apply func(seq uint64, payload []byte) error
}

// ReplayStats reports what Open found in an existing log.
type ReplayStats struct {
	// Entries is the number of valid entries replayed.
	Entries int
	// BaseSeq is the file's checkpoint base: entries <= BaseSeq were
	// rotated into a snapshot before this log was written.
	BaseSeq uint64
	// LastSeq is the last valid sequence number in the log (== BaseSeq
	// when the log holds no entries).
	LastSeq uint64
	// TruncatedBytes is the length of the torn tail dropped by lenient
	// recovery, 0 for a clean log.
	TruncatedBytes int64
}

// WAL is an append-only, checksummed, fsync-batched log. One writer
// discipline: appends are serialized internally, and concurrent appenders
// share group commits; readers (ReadFrames, WaitSynced) are safe alongside
// appends. All methods are safe for concurrent use.
type WAL struct {
	path   string
	window time.Duration

	// Lock order: fsMu (fsync/rotation/close of the fd) before mu (file
	// writes and the seq/offset index) before sc (durability state). Each
	// may also be taken alone.
	fsMu    sync.Mutex
	mu      sync.Mutex
	f       *os.File
	size    int64
	baseSeq uint64
	lastSeq uint64
	seqs    []uint64 // seqs[i] is the i-th entry's sequence number
	offs    []int64  // offs[i] is the i-th entry's file offset
	closed  bool
	scratch []byte // frame encode buffer, reused under mu

	sc         sync.Mutex // durability state
	cond       *sync.Cond
	syncedSeq  uint64
	syncedSize int64
	syncErr    error // sticky: after a failed fsync no durability promise holds
	scClosed   bool  // sc-guarded mirror of closed, for WaitSynced's loop

	appends   atomic.Int64
	syncs     atomic.Int64
	rotations atomic.Int64

	closeOnce sync.Once
	closeErr  error
	stopSync  chan struct{}
	syncDone  chan struct{}
}

// Open opens (or creates) the log at path, replays every valid entry
// through opts.Apply, recovers the tail (truncate-at-tear by default,
// *CorruptError under opts.Strict), and returns the WAL positioned for
// appending. An uninterpretable file header is always a *CorruptError:
// with an untrusted base sequence number no entry can be trusted either.
func Open(path string, opts Options) (*WAL, ReplayStats, error) {
	// A crash mid-rotation can leave the staging file behind; it was never
	// renamed over the log, so it is dead weight.
	_ = os.Remove(path + ".rotating")

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	w := &WAL{path: path, window: opts.SyncWindow, f: f}
	w.cond = sync.NewCond(&w.sc)
	st, err := w.recover(opts)
	if err != nil {
		f.Close()
		return nil, st, err
	}
	if w.window > 0 {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, st, nil
}

// recover validates the header (writing a fresh one into an empty file),
// replays the entries, and truncates or rejects a torn tail.
func (w *WAL) recover(opts Options) (ReplayStats, error) {
	fi, err := w.f.Stat()
	if err != nil {
		return ReplayStats{}, fmt.Errorf("wal: stat %s: %w", w.path, err)
	}
	if fi.Size() == 0 {
		hdr := encodeHeader(0)
		if _, err := w.f.WriteAt(hdr, 0); err != nil {
			return ReplayStats{}, fmt.Errorf("wal: init %s: %w", w.path, err)
		}
		if err := w.f.Sync(); err != nil {
			return ReplayStats{}, fmt.Errorf("wal: init %s: %w", w.path, err)
		}
		if err := syncDir(w.path); err != nil {
			return ReplayStats{}, err
		}
		w.size, w.syncedSize = headerSize, headerSize
		return ReplayStats{}, nil
	}

	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(w.f, 0, fi.Size()), hdr); err != nil {
		return ReplayStats{}, &CorruptError{Path: w.path, Offset: 0, Reason: "truncated file header", Err: err}
	}
	base, err := decodeHeader(hdr)
	if err != nil {
		cerr := err.(*CorruptError)
		cerr.Path = w.path
		return ReplayStats{}, cerr
	}
	st := ReplayStats{BaseSeq: base, LastSeq: base}
	w.baseSeq, w.lastSeq = base, base

	rd := NewReader(io.NewSectionReader(w.f, headerSize, fi.Size()-headerSize), base)
	good := int64(headerSize)
	for {
		off := headerSize + rd.Offset()
		seq, payload, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrIncomplete) {
				var cerr *CorruptError
				if !errors.As(err, &cerr) {
					// A real I/O error — never truncate over a failing disk.
					return st, fmt.Errorf("wal: replay %s: %w", w.path, err)
				}
			}
			if opts.Strict {
				return st, &CorruptError{Path: w.path, Offset: off, Reason: "torn or corrupt tail (strict mode)", Err: err}
			}
			st.TruncatedBytes = fi.Size() - off
			if terr := w.f.Truncate(off); terr != nil {
				return st, fmt.Errorf("wal: truncate tear in %s: %w", w.path, terr)
			}
			if terr := w.f.Sync(); terr != nil {
				return st, fmt.Errorf("wal: truncate tear in %s: %w", w.path, terr)
			}
			break
		}
		if opts.Apply != nil {
			if aerr := opts.Apply(seq, payload); aerr != nil {
				return st, fmt.Errorf("wal: replay %s entry seq %d: %w", w.path, seq, aerr)
			}
		}
		w.seqs = append(w.seqs, seq)
		w.offs = append(w.offs, off)
		w.lastSeq = seq
		st.Entries++
		st.LastSeq = seq
		good = headerSize + rd.Offset()
	}
	w.size, w.syncedSize = good, good
	w.syncedSeq = w.lastSeq
	return st, nil
}

// syncLoop is the group-commit ticker: while the window is open, appends
// only buffer; each tick fsyncs everything written so far and wakes the
// appenders waiting on durability.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.window)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
		}
		_ = w.Sync()
	}
}

// Append appends payload with the next sequence number (lastSeq+1) and
// blocks until the entry is durable (or ctx ends); it returns the assigned
// sequence number. This is the primary's insert path.
func (w *WAL) Append(ctx context.Context, payload []byte) (uint64, error) {
	w.mu.Lock()
	seq := w.lastSeq + 1
	if err := w.writeLocked(seq, payload); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.mu.Unlock()
	return seq, w.WaitDurable(ctx, seq)
}

// AppendRecord appends payload under an explicit sequence number (which
// must exceed every sequence number already in the log) and blocks until
// durable. This is the follower's apply path: replicated entries keep the
// primary's numbering verbatim.
func (w *WAL) AppendRecord(ctx context.Context, seq uint64, payload []byte) error {
	w.mu.Lock()
	if err := w.writeLocked(seq, payload); err != nil {
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return w.WaitDurable(ctx, seq)
}

// WriteRecord appends payload under an explicit sequence number without
// waiting for durability — the write half of AppendRecord, for callers
// that hold their own lock across the write and want to wait outside it
// (engine.Dynamic appends under its serving mutex and waits after
// releasing it, so a slow fsync never blocks readers).
func (w *WAL) WriteRecord(seq uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeLocked(seq, payload)
}

// writeLocked frames and writes one entry at the current tail. On a write
// error nothing is recorded: the partial frame's bytes sit beyond w.size,
// where the next successful write overwrites them and crash recovery
// truncates them — either way they are invisible.
func (w *WAL) writeLocked(seq uint64, payload []byte) error {
	if w.closed {
		return ErrClosed
	}
	if err := w.stickyErr(); err != nil {
		return fmt.Errorf("wal: log failed, refusing append: %w", err)
	}
	if seq <= w.lastSeq {
		return fmt.Errorf("wal: sequence number %d not after last %d", seq, w.lastSeq)
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("wal: payload of %d bytes exceeds cap", len(payload))
	}
	w.scratch = AppendEntry(w.scratch[:0], seq, payload)
	if _, err := w.f.WriteAt(w.scratch, w.size); err != nil {
		return fmt.Errorf("wal: append seq %d: %w", seq, err)
	}
	w.seqs = append(w.seqs, seq)
	w.offs = append(w.offs, w.size)
	w.size += int64(len(w.scratch))
	w.lastSeq = seq
	w.appends.Add(1)
	return nil
}

// stickyErr reports the recorded fsync failure, if any. After one, no
// durability promise holds for any buffered byte (the kernel may have
// dropped the dirty pages), so the log refuses further appends rather
// than acknowledge writes it cannot make durable.
func (w *WAL) stickyErr() error {
	w.sc.Lock()
	defer w.sc.Unlock()
	return w.syncErr
}

// Sync fsyncs everything appended so far and publishes the new durable
// watermark to waiters. Concurrent callers batch: one whose watermark an
// earlier fsync already covered returns without touching the disk. fsMu
// serializes the fsync against rotation's fd swap and Close's fd close.
func (w *WAL) Sync() error {
	w.fsMu.Lock()
	defer w.fsMu.Unlock()
	w.mu.Lock()
	target, size := w.lastSeq, w.size
	f, closed := w.f, w.closed
	w.mu.Unlock()
	if closed {
		return ErrClosed
	}
	w.sc.Lock()
	if w.syncErr != nil {
		err := w.syncErr
		w.sc.Unlock()
		return err
	}
	if w.syncedSeq >= target {
		w.sc.Unlock()
		return nil
	}
	w.sc.Unlock()
	err := f.Sync()
	w.syncs.Add(1)
	w.sc.Lock()
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = fmt.Errorf("wal: fsync %s: %w", w.path, err)
		}
		err = w.syncErr
	} else {
		if target > w.syncedSeq {
			w.syncedSeq = target
		}
		if size > w.syncedSize {
			w.syncedSize = size
		}
	}
	w.cond.Broadcast()
	w.sc.Unlock()
	return err
}

// WaitDurable blocks until the appended entry seq is fsynced, ctx ends,
// or the log fails. With no group-commit window it drives the fsync
// itself (batching with concurrent appenders); with one it waits for the
// sync loop's next tick.
func (w *WAL) WaitDurable(ctx context.Context, seq uint64) error {
	if w.window <= 0 {
		w.sc.Lock()
		done := w.syncedSeq >= seq && w.syncErr == nil
		w.sc.Unlock()
		if done {
			return nil
		}
		return w.Sync()
	}
	return w.WaitSynced(ctx, seq)
}

// WaitSynced blocks until the durable watermark reaches seq, ctx ends, or
// the log closes — the long-poll primitive behind the /wal endpoint (and
// the group-commit wait). Unlike WaitDurable it never fsyncs and seq need
// not exist yet.
func (w *WAL) WaitSynced(ctx context.Context, seq uint64) error {
	stop := context.AfterFunc(ctx, func() {
		w.sc.Lock()
		w.cond.Broadcast()
		w.sc.Unlock()
	})
	defer stop()
	w.sc.Lock()
	defer w.sc.Unlock()
	for w.syncedSeq < seq {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.scClosed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		w.cond.Wait()
	}
	return nil
}

// ReadFrames returns raw framed entries with sequence numbers >= from out
// of the durable prefix of the log, ready to stream to a follower: up to
// maxBytes of frames (always at least one entry when any qualifies). It
// returns the frames, the count of entries included, and the sequence
// number of the last one (0 when none qualify yet). Asking for entries a
// checkpoint rotated away returns ErrRotated.
func (w *WAL) ReadFrames(from uint64, maxBytes int) (frames []byte, count int, last uint64, err error) {
	if from == 0 {
		from = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, 0, 0, ErrClosed
	}
	// The durable watermark is read under mu so it is consistent with the
	// seq/offset index even across a concurrent rotation.
	w.sc.Lock()
	durableSeq, durableSize := w.syncedSeq, w.syncedSize
	w.sc.Unlock()
	if from <= w.baseSeq {
		return nil, 0, 0, fmt.Errorf("entries up to seq %d are checkpointed, first available is %d: %w",
			w.baseSeq, w.baseSeq+1, ErrRotated)
	}
	// First index with seqs[i] >= from (seqs are strictly increasing).
	lo, hi := 0, len(w.seqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.seqs[mid] < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	end := start
	var startOff, endOff int64
	if start < len(w.seqs) {
		startOff = w.offs[start]
		endOff = startOff
	}
	for end < len(w.seqs) && w.seqs[end] <= durableSeq {
		next := durableSize
		if end+1 < len(w.offs) {
			next = w.offs[end+1]
		}
		if count > 0 && next-startOff > int64(maxBytes) {
			break
		}
		endOff = next
		last = w.seqs[end]
		end++
		count++
	}
	if count == 0 {
		return nil, 0, 0, nil
	}
	frames = make([]byte, endOff-startOff)
	if _, err := w.f.ReadAt(frames, startOff); err != nil {
		return nil, 0, 0, fmt.Errorf("wal: read %s: %w", w.path, err)
	}
	return frames, count, last, nil
}

// testHookRotateAfterRename, when non-nil, runs inside Rotate between the
// staged file's rename and the directory fsync — the crash window tests
// inject failures into. A non-nil return aborts Rotate the way a crash
// would: the on-disk log is already the new file while the in-memory WAL
// still describes the old one, so the test must discard the WAL and
// reopen from disk, exactly like a restarted process.
var testHookRotateAfterRename func() error

// Rotate checkpoints the log at appliedSeq: entries with seq <= appliedSeq
// — now durable in a compacted snapshot — are dropped by writing a fresh
// log (new header with base appliedSeq, the surviving entries copied
// verbatim) beside the old one and atomically renaming it over. A crash at
// any point leaves either the old complete log or the new complete log.
// Only durable (fsynced) entries may be rotated behind; appliedSeq beyond
// the durable watermark is an error.
func (w *WAL) Rotate(appliedSeq uint64) error {
	w.fsMu.Lock()
	defer w.fsMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.stickyErr(); err != nil {
		return fmt.Errorf("wal: log failed, refusing rotation: %w", err)
	}
	if appliedSeq <= w.baseSeq {
		return nil
	}
	w.sc.Lock()
	durable := w.syncedSeq
	w.sc.Unlock()
	if appliedSeq > durable {
		return fmt.Errorf("wal: rotate at seq %d beyond durable watermark %d", appliedSeq, durable)
	}

	// Index of the first surviving entry.
	cut := 0
	for cut < len(w.seqs) && w.seqs[cut] <= appliedSeq {
		cut++
	}
	tmpPath := w.path + ".rotating"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate %s: %w", w.path, err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	if _, err := tmp.Write(encodeHeader(appliedSeq)); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rotate %s: %w", w.path, err)
	}
	newOffs := make([]int64, 0, len(w.seqs)-cut)
	off := int64(headerSize)
	if cut < len(w.seqs) {
		keepFrom := w.offs[cut]
		if _, err := io.Copy(tmp, io.NewSectionReader(w.f, keepFrom, w.size-keepFrom)); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: rotate %s: %w", w.path, err)
		}
		for _, o := range w.offs[cut:] {
			newOffs = append(newOffs, o-keepFrom+headerSize)
		}
		off += w.size - keepFrom
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rotate %s: %w", w.path, err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: rotate %s: %w", w.path, err)
	}
	if h := testHookRotateAfterRename; h != nil {
		if err := h(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := syncDir(w.path); err != nil {
		tmp.Close()
		return err
	}
	old := w.f
	w.f = tmp
	old.Close()
	w.seqs = append([]uint64(nil), w.seqs[cut:]...)
	w.offs = newOffs
	w.baseSeq = appliedSeq
	if w.lastSeq < appliedSeq {
		w.lastSeq = appliedSeq
	}
	w.size = off
	w.sc.Lock()
	w.syncedSize = off
	if w.syncedSeq < appliedSeq {
		w.syncedSeq = appliedSeq
	}
	w.sc.Unlock()
	w.rotations.Add(1)
	return nil
}

// Reset replaces the log wholesale with a fresh, empty one whose
// checkpoint base is base — the follower's re-seed primitive. Once a
// snapshot covering every entry up to base is installed, nothing in the
// local log is worth keeping: entries at or below base are redundant with
// the snapshot, and a follower lagging far enough to need a snapshot has
// nothing above it. The swap uses the same staged write + rename +
// directory-fsync discipline as Rotate, so a crash at any point leaves
// either the old complete log or the new empty one.
//
// Unlike Rotate, Reset clears a sticky fsync error: the durability
// promises the old file could no longer keep die with that file, and the
// fresh one starts with no outstanding obligations.
func (w *WAL) Reset(base uint64) error {
	w.fsMu.Lock()
	defer w.fsMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	tmpPath := w.path + ".rotating"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset %s: %w", w.path, err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	if _, err := tmp.Write(encodeHeader(base)); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: reset %s: %w", w.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: reset %s: %w", w.path, err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: reset %s: %w", w.path, err)
	}
	if err := syncDir(w.path); err != nil {
		tmp.Close()
		return err
	}
	old := w.f
	w.f = tmp
	old.Close()
	w.seqs, w.offs = nil, nil
	w.baseSeq, w.lastSeq = base, base
	w.size = headerSize
	w.sc.Lock()
	w.syncedSeq = base
	w.syncedSize = headerSize
	w.syncErr = nil
	w.cond.Broadcast()
	w.sc.Unlock()
	w.rotations.Add(1)
	return nil
}

// Close fsyncs outstanding appends and closes the file; it is idempotent.
// Waiters unblock: with an error if the final fsync failed, cleanly
// otherwise.
func (w *WAL) Close() error {
	w.closeOnce.Do(func() {
		if w.stopSync != nil {
			close(w.stopSync)
			<-w.syncDone
		}
		err := w.Sync()
		w.fsMu.Lock()
		w.mu.Lock()
		w.closed = true
		cerr := w.f.Close()
		w.mu.Unlock()
		w.fsMu.Unlock()
		w.sc.Lock()
		w.scClosed = true
		w.cond.Broadcast()
		w.sc.Unlock()
		if err == nil {
			err = cerr
		}
		w.closeErr = err
	})
	return w.closeErr
}

// LastSeq reports the highest sequence number appended (durable or not).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// BaseSeq reports the checkpoint base: the highest sequence number rotated
// out of the log (0 if none ever was).
func (w *WAL) BaseSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.baseSeq
}

// SyncedSeq reports the durable watermark: every entry up to it is
// fsynced.
func (w *WAL) SyncedSeq() uint64 {
	w.sc.Lock()
	defer w.sc.Unlock()
	return w.syncedSeq
}

// Stats is a point-in-time summary for health and stats endpoints.
type Stats struct {
	// Path is the log file.
	Path string
	// SizeBytes is the current file size.
	SizeBytes int64
	// Entries is the number of entries currently in the file.
	Entries int
	// BaseSeq, LastSeq, SyncedSeq are the checkpoint base, the append
	// head, and the durable watermark.
	BaseSeq, LastSeq, SyncedSeq uint64
	// Appends, Syncs, Rotations count operations over the WAL's life.
	Appends, Syncs, Rotations int64
	// LastError is the sticky fsync failure, "" while healthy.
	LastError string
}

// Stats returns the current counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	st := Stats{
		Path:      w.path,
		SizeBytes: w.size,
		Entries:   len(w.seqs),
		BaseSeq:   w.baseSeq,
		LastSeq:   w.lastSeq,
		Appends:   w.appends.Load(),
		Syncs:     w.syncs.Load(),
		Rotations: w.rotations.Load(),
	}
	w.mu.Unlock()
	w.sc.Lock()
	st.SyncedSeq = w.syncedSeq
	if w.syncErr != nil {
		st.LastError = w.syncErr.Error()
	}
	w.sc.Unlock()
	return st
}

// syncDir fsyncs path's parent directory so a just-created or just-renamed
// file survives a crash of the directory entry itself.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: open dir of %s: %w", path, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir of %s: %w", path, err)
	}
	return nil
}
