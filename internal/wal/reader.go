package wal

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

// Reader decodes a stream of framed entries — a WAL file's entry region or
// a primary's /wal HTTP response body. It enforces per-entry integrity
// (magic, checksum, length cap) and strictly increasing sequence numbers;
// the caller decides what a failure means (a file replay truncates at the
// tear, a follower reconnects).
type Reader struct {
	r       io.Reader
	buf     []byte
	off     int64  // offset of the next undecoded byte
	lastSeq uint64 // last successfully decoded seq (monotonicity check)
}

// NewReader decodes entries from r. firstAfter seeds the monotonicity
// check: every decoded entry must have seq > firstAfter (pass the file's
// base seq, or 0 for an unconstrained stream).
func NewReader(r io.Reader, firstAfter uint64) *Reader {
	return &Reader{r: r, lastSeq: firstAfter}
}

// Offset reports the byte offset of the next undecoded entry — after an
// error, the offset where the bad frame starts.
func (d *Reader) Offset() int64 { return d.off }

// Next decodes one entry. The payload aliases an internal buffer that the
// next call reuses — copy it before retaining. A clean end of stream at an
// entry boundary returns io.EOF; a stream cut mid-frame returns
// ErrIncomplete; an uninterpretable or out-of-order frame returns a
// *CorruptError.
func (d *Reader) Next() (seq uint64, payload []byte, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(d.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, d.short(err)
	}
	if _, err := io.ReadFull(d.r, hdr[1:]); err != nil {
		return 0, nil, d.short(err)
	}
	if binary.BigEndian.Uint32(hdr[:]) != entryMagic {
		return 0, nil, &CorruptError{Offset: d.off, Reason: "bad entry magic"}
	}
	seq = binary.BigEndian.Uint64(hdr[4:])
	length := binary.BigEndian.Uint32(hdr[12:])
	if length > MaxPayload {
		return 0, nil, &CorruptError{Offset: d.off, Reason: "entry length exceeds cap"}
	}
	need := int(length) + 4
	if cap(d.buf) < need {
		d.buf = make([]byte, need)
	}
	body := d.buf[:need]
	if _, err := io.ReadFull(d.r, body); err != nil {
		return 0, nil, d.short(err)
	}
	payload = body[:length]
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.BigEndian.Uint32(body[length:]) {
		return 0, nil, &CorruptError{Offset: d.off, Reason: "entry checksum mismatch"}
	}
	if seq <= d.lastSeq {
		return 0, nil, &CorruptError{Offset: d.off, Reason: "sequence number not increasing"}
	}
	d.lastSeq = seq
	d.off += int64(entrySize(int(length)))
	return seq, payload, nil
}

// short classifies a mid-frame read failure: running out of bytes is the
// torn tail ErrIncomplete marks; any other I/O error propagates as-is so a
// failing disk is never mistaken for a crash artifact and truncated over.
func (d *Reader) short(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrIncomplete
	}
	return err
}
