package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xseq/internal/faultio"
	"xseq/internal/xmltree"
)

// collectApply returns an Apply callback recording (seq, payload copy).
type replayed struct {
	seq     uint64
	payload []byte
}

func collectApply(into *[]replayed) func(uint64, []byte) error {
	return func(seq uint64, payload []byte) error {
		*into = append(*into, replayed{seq, append([]byte(nil), payload...)})
		return nil
	}
}

func tmpWAL(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func mustOpen(t *testing.T, path string, opts Options) (*WAL, ReplayStats) {
	t.Helper()
	w, st, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpWAL(t)
	w, st := mustOpen(t, path, Options{})
	if st.Entries != 0 || st.LastSeq != 0 {
		t.Fatalf("fresh log replayed %+v", st)
	}
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		seq, err := w.Append(ctx, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if w.LastSeq() != 5 || w.SyncedSeq() != 5 {
		t.Fatalf("last %d synced %d", w.LastSeq(), w.SyncedSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got []replayed
	w2, st2 := mustOpen(t, path, Options{Apply: collectApply(&got)})
	defer w2.Close()
	if st2.Entries != 5 || st2.LastSeq != 5 || st2.TruncatedBytes != 0 {
		t.Fatalf("replay = %+v", st2)
	}
	for i, e := range got {
		want := fmt.Sprintf("payload-%d", i+1)
		if e.seq != uint64(i+1) || string(e.payload) != want {
			t.Fatalf("entry %d = (%d, %q), want (%d, %q)", i, e.seq, e.payload, i+1, want)
		}
	}
	// The log keeps appending where it left off.
	seq, err := w2.Append(context.Background(), []byte("six"))
	if err != nil || seq != 6 {
		t.Fatalf("resumed append = %d, %v", seq, err)
	}
}

func TestAppendRecordExplicitSeqsAndGaps(t *testing.T) {
	path := tmpWAL(t)
	w, _ := mustOpen(t, path, Options{})
	ctx := context.Background()
	if err := w.AppendRecord(ctx, 5, []byte("five")); err != nil {
		t.Fatalf("append seq 5: %v", err)
	}
	if err := w.AppendRecord(ctx, 9, []byte("nine")); err != nil {
		t.Fatalf("append seq 9 (gap): %v", err)
	}
	if err := w.AppendRecord(ctx, 9, []byte("dup")); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := w.AppendRecord(ctx, 3, []byte("backwards")); err == nil {
		t.Fatal("regressing seq accepted")
	}
	w.Close()

	var got []replayed
	_, st := mustOpen(t, path, Options{Apply: collectApply(&got)})
	if st.Entries != 2 || st.LastSeq != 9 {
		t.Fatalf("replay = %+v", st)
	}
	if got[0].seq != 5 || got[1].seq != 9 {
		t.Fatalf("seqs = %d, %d", got[0].seq, got[1].seq)
	}
}

// buildLogBytes renders a complete WAL file image: header + framed entries.
func buildLogBytes(baseSeq uint64, payloads ...string) []byte {
	buf := encodeHeader(baseSeq)
	seq := baseSeq
	for _, p := range payloads {
		seq++
		buf = AppendEntry(buf, seq, []byte(p))
	}
	return buf
}

func TestTornTailTruncatesByDefault(t *testing.T) {
	full := buildLogBytes(0, "alpha", "beta", "gamma")
	whole := buildLogBytes(0, "alpha", "beta")
	// Cut the file mid-way through the third entry — the torn write a
	// crash between write and fsync leaves behind.
	for cut := int64(len(whole)) + 1; cut < int64(len(full)); cut += 3 {
		path := tmpWAL(t)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		tw := &faultio.TruncatingWriter{W: f, Limit: cut}
		if _, err := tw.Write(full); err != nil {
			t.Fatal(err)
		}
		f.Close()

		var got []replayed
		w, st := mustOpen(t, path, Options{Apply: collectApply(&got)})
		if st.Entries != 2 || st.LastSeq != 2 {
			t.Fatalf("cut %d: replay = %+v", cut, st)
		}
		if st.TruncatedBytes != cut-int64(len(whole)) {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, st.TruncatedBytes, cut-int64(len(whole)))
		}
		// The tear is gone from disk: appending and re-replaying is clean.
		if _, err := w.Append(context.Background(), []byte("delta")); err != nil {
			t.Fatalf("cut %d: post-recovery append: %v", cut, err)
		}
		w.Close()
		var again []replayed
		w2, st2 := mustOpen(t, path, Options{Strict: true, Apply: collectApply(&again)})
		if st2.Entries != 3 || st2.TruncatedBytes != 0 {
			t.Fatalf("cut %d: second replay = %+v", cut, st2)
		}
		if string(again[2].payload) != "delta" || again[2].seq != 3 {
			t.Fatalf("cut %d: entry after recovery = %+v", cut, again[2])
		}
		w2.Close()
	}
}

func TestTornTailStrictModeFails(t *testing.T) {
	full := buildLogBytes(0, "alpha", "beta", "gamma")
	path := tmpWAL(t)
	if err := os.WriteFile(path, full[:len(full)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, Options{Strict: true})
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("strict open of torn log = %v, want *CorruptError", err)
	}
	// The file is untouched: lenient recovery afterwards still works.
	var got []replayed
	w, st := mustOpen(t, path, Options{Apply: collectApply(&got)})
	defer w.Close()
	if st.Entries != 2 {
		t.Fatalf("lenient replay after strict refusal = %+v", st)
	}
}

func TestBitFlipTruncatesAtFlippedEntry(t *testing.T) {
	full := buildLogBytes(0, "alpha", "beta", "gamma")
	hdrAndFirst := len(buildLogBytes(0, "alpha"))
	// Flip a bit inside the second entry's frame (its checksum bytes).
	flipped := append([]byte(nil), full...)
	target := flipped[hdrAndFirst:]
	copy(target, faultio.FlipBit(target, 8*20))

	path := tmpWAL(t)
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{Strict: true}); err == nil {
		t.Fatal("strict open of bit-flipped log succeeded")
	}
	var got []replayed
	w, st := mustOpen(t, path, Options{Apply: collectApply(&got)})
	defer w.Close()
	if st.Entries != 1 || st.LastSeq != 1 {
		t.Fatalf("replay of bit-flipped log = %+v", st)
	}
	if st.TruncatedBytes != int64(len(full)-hdrAndFirst) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(full)-hdrAndFirst)
	}
}

func TestHeaderCorruptionAlwaysFatal(t *testing.T) {
	full := buildLogBytes(0, "alpha")
	for _, strict := range []bool{false, true} {
		path := tmpWAL(t)
		if err := os.WriteFile(path, faultio.FlipBit(full, 12*8), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(path, Options{Strict: strict})
		var cerr *CorruptError
		if !errors.As(err, &cerr) {
			t.Fatalf("strict=%v: open with flipped header = %v, want *CorruptError", strict, err)
		}
	}
	// A header cut short is equally fatal.
	path := tmpWAL(t)
	if err := os.WriteFile(path, full[:headerSize-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var cerr *CorruptError
	if _, _, err := Open(path, Options{}); !errors.As(err, &cerr) {
		t.Fatalf("open with truncated header = %v, want *CorruptError", err)
	}
}

func TestReplayIdempotentAcrossRepeatedCrashes(t *testing.T) {
	path := tmpWAL(t)
	ctx := context.Background()
	// Crash cycle: append, tear the tail, recover, append more — three
	// times; every recovery must see exactly the durable prefix.
	wantSeq := uint64(0)
	for cycle := 0; cycle < 3; cycle++ {
		var got []replayed
		w, st := mustOpen(t, path, Options{Apply: collectApply(&got)})
		if st.LastSeq != wantSeq || st.Entries != int(wantSeq) {
			t.Fatalf("cycle %d: replay = %+v, want last seq %d", cycle, st, wantSeq)
		}
		for i := 0; i < 2; i++ {
			if _, err := w.Append(ctx, []byte(fmt.Sprintf("c%d-%d", cycle, i))); err != nil {
				t.Fatal(err)
			}
			wantSeq++
		}
		w.Close()
		// Tear: stomp a partial garbage frame onto the tail, as a crash
		// mid-append would.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x78, 0x57, 0x4c, 0x31, 0xff, 0x01}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	var got []replayed
	w, st := mustOpen(t, path, Options{Apply: collectApply(&got)})
	defer w.Close()
	if st.LastSeq != wantSeq || st.Entries != 6 {
		t.Fatalf("final replay = %+v, want 6 entries to seq %d", st, wantSeq)
	}
}

func TestApplyErrorAbortsOpen(t *testing.T) {
	path := tmpWAL(t)
	if err := os.WriteFile(path, buildLogBytes(0, "a", "b"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("apply boom")
	_, _, err := Open(path, Options{Apply: func(seq uint64, _ []byte) error {
		if seq == 2 {
			return boom
		}
		return nil
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("open = %v, want wrapped apply error", err)
	}
}

func TestRotateDropsCheckpointedEntries(t *testing.T) {
	path := tmpWAL(t)
	w, _ := mustOpen(t, path, Options{})
	ctx := context.Background()
	for i := 1; i <= 10; i++ {
		if _, err := w.Append(ctx, []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Stats().SizeBytes
	if err := w.Rotate(6); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	st := w.Stats()
	if st.BaseSeq != 6 || st.Entries != 4 || st.LastSeq != 10 {
		t.Fatalf("after rotate: %+v", st)
	}
	if st.SizeBytes >= before {
		t.Fatalf("rotation did not shrink the log: %d -> %d", before, st.SizeBytes)
	}
	// Entries behind the checkpoint are gone; later ones still serve.
	if _, _, _, err := w.ReadFrames(6, 1<<20); !errors.Is(err, ErrRotated) {
		t.Fatalf("ReadFrames(6) = %v, want ErrRotated", err)
	}
	frames, n, last, err := w.ReadFrames(7, 1<<20)
	if err != nil || n != 4 || last != 10 {
		t.Fatalf("ReadFrames(7) = %d entries to %d, %v", n, last, err)
	}
	rd := NewReader(bytes.NewReader(frames), 6)
	seq, payload, err := rd.Next()
	if err != nil || seq != 7 || string(payload) != "p7" {
		t.Fatalf("first rotated-log frame = (%d, %q, %v)", seq, payload, err)
	}
	// Appends continue past the rotation, and a reopen replays only the
	// surviving suffix with the right base.
	if _, err := w.Append(ctx, []byte("p11")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	var got []replayed
	w2, st2 := mustOpen(t, path, Options{Strict: true, Apply: collectApply(&got)})
	defer w2.Close()
	if st2.BaseSeq != 6 || st2.Entries != 5 || st2.LastSeq != 11 {
		t.Fatalf("replay after rotate = %+v", st2)
	}
	if got[0].seq != 7 || got[4].seq != 11 {
		t.Fatalf("replayed seqs %d..%d", got[0].seq, got[4].seq)
	}
	// Rotating everything empties the log but preserves the numbering.
	if err := w2.Rotate(11); err != nil {
		t.Fatal(err)
	}
	if st := w2.Stats(); st.Entries != 0 || st.BaseSeq != 11 || st.LastSeq != 11 {
		t.Fatalf("after full rotate: %+v", st)
	}
	if seq, err := w2.Append(context.Background(), []byte("p12")); err != nil || seq != 12 {
		t.Fatalf("append after full rotate = %d, %v", seq, err)
	}
}

func TestRotateBeyondDurableWatermarkRefused(t *testing.T) {
	w, _ := mustOpen(t, tmpWAL(t), Options{})
	if _, err := w.Append(context.Background(), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(99); err == nil {
		t.Fatal("rotate beyond the log accepted")
	}
}

func TestReadFramesBoundsAndEmpty(t *testing.T) {
	w, _ := mustOpen(t, tmpWAL(t), Options{})
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if _, err := w.Append(ctx, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// maxBytes caps the batch but always admits at least one entry.
	frames, n, last, err := w.ReadFrames(1, 1)
	if err != nil || n != 1 || last != 1 {
		t.Fatalf("tiny budget = %d entries to %d, %v", n, last, err)
	}
	if len(frames) != entrySize(100) {
		t.Fatalf("frame bytes = %d", len(frames))
	}
	frames, n, last, err = w.ReadFrames(2, 2*entrySize(100))
	if err != nil || n != 2 || last != 3 {
		t.Fatalf("two-entry budget = %d entries to %d, %v", n, last, err)
	}
	rd := NewReader(bytes.NewReader(frames), 1)
	for want := uint64(2); want <= 3; want++ {
		seq, _, err := rd.Next()
		if err != nil || seq != want {
			t.Fatalf("frame seq = %d, %v, want %d", seq, err, want)
		}
	}
	// Beyond the head: nothing yet, no error — the long-poll's "not yet".
	if _, n, _, err := w.ReadFrames(6, 1<<20); err != nil || n != 0 {
		t.Fatalf("beyond head = %d entries, %v", n, err)
	}
}

func TestGroupCommitWindowConcurrentAppends(t *testing.T) {
	path := tmpWAL(t)
	w, _ := mustOpen(t, path, Options{SyncWindow: 2 * time.Millisecond})
	ctx := context.Background()
	const appenders, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := w.Append(ctx, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("append: %v", err)
	}
	st := w.Stats()
	if st.LastSeq != appenders*each || st.SyncedSeq != appenders*each {
		t.Fatalf("stats after concurrent appends: %+v", st)
	}
	// Group commit must have batched: far fewer fsyncs than appends.
	if st.Syncs >= st.Appends {
		t.Fatalf("no batching: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	w.Close()
	var got []replayed
	_, st2 := mustOpen(t, path, Options{Strict: true, Apply: collectApply(&got)})
	if st2.Entries != appenders*each {
		t.Fatalf("replay found %d entries", st2.Entries)
	}
}

func TestWaitSyncedLongPoll(t *testing.T) {
	w, _ := mustOpen(t, tmpWAL(t), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := w.WaitSynced(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait on empty log = %v", err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- w.WaitSynced(ctx, 1)
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := w.Append(context.Background(), []byte("wake")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter woke with %v", err)
	}
}

func TestCloseIdempotentAndUnblocksWaiters(t *testing.T) {
	w, _ := mustOpen(t, tmpWAL(t), Options{SyncWindow: time.Hour})
	done := make(chan error, 1)
	go func() {
		done <- w.WaitSynced(context.Background(), 99)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("waiter after close = %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := w.Append(context.Background(), []byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
}

func TestGroupCommitWindowDurableBeforeReturn(t *testing.T) {
	// With a long window, Close's final sync is what makes entries
	// durable; an Append must not outlive its durability wait wrongly.
	path := tmpWAL(t)
	w, _ := mustOpen(t, path, Options{SyncWindow: 3 * time.Millisecond})
	seq, err := w.Append(context.Background(), []byte("windowed"))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := w.SyncedSeq(); got < seq {
		t.Fatalf("append returned before durable: synced %d < seq %d", got, seq)
	}
	w.Close()
}

func TestDocumentCodecRoundTrip(t *testing.T) {
	doc := &xmltree.Document{
		ID: 42,
		Root: xmltree.NewElem("rec",
			xmltree.NewElem("title", xmltree.NewValue("alpha & <beta>")),
			xmltree.NewElem("year", xmltree.NewValue("2005")),
		),
	}
	payload, err := EncodeDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDocument(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 42 || back.Root.String() != doc.Root.String() {
		t.Fatalf("round trip = %d %s", back.ID, back.Root)
	}
	if _, err := EncodeDocument(nil); err == nil {
		t.Fatal("nil document encoded")
	}
	var cerr *CorruptError
	if _, err := DecodeDocument([]byte("junk")); !errors.As(err, &cerr) {
		t.Fatalf("junk payload = %v, want *CorruptError", err)
	}
}

func TestReaderStreamErrors(t *testing.T) {
	frames := AppendEntry(nil, 1, []byte("one"))
	frames = AppendEntry(frames, 2, []byte("two"))

	// Clean stream.
	rd := NewReader(bytes.NewReader(frames), 0)
	for want := uint64(1); want <= 2; want++ {
		seq, _, err := rd.Next()
		if err != nil || seq != want {
			t.Fatalf("next = %d, %v", seq, err)
		}
	}
	if _, _, err := rd.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v", err)
	}

	// Cut mid-frame: ErrIncomplete, not EOF and not corruption.
	rd = NewReader(bytes.NewReader(frames[:len(frames)-3]), 0)
	rd.Next()
	if _, _, err := rd.Next(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("torn stream = %v", err)
	}

	// Out-of-order seq: corruption.
	bad := AppendEntry(nil, 5, []byte("five"))
	bad = AppendEntry(bad, 4, []byte("four"))
	rd = NewReader(bytes.NewReader(bad), 0)
	rd.Next()
	var cerr *CorruptError
	if _, _, err := rd.Next(); !errors.As(err, &cerr) {
		t.Fatalf("regressing stream = %v", err)
	}

	// Monotonicity seed: entries at or below firstAfter are rejected.
	rd = NewReader(bytes.NewReader(frames), 1)
	if _, _, err := rd.Next(); !errors.As(err, &cerr) {
		t.Fatalf("seq at base = %v, want *CorruptError", err)
	}
}

func TestStaleRotationStagingFileIsCleaned(t *testing.T) {
	path := tmpWAL(t)
	if err := os.WriteFile(path+".rotating", []byte("leftover from a crash mid-rotate"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, _ := mustOpen(t, path, Options{})
	defer w.Close()
	if _, err := os.Stat(path + ".rotating"); !os.IsNotExist(err) {
		t.Fatalf("staging file survived open: %v", err)
	}
}
