package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the frame decoder. Invariants:
// DecodeEntry never panics, never reads past its input, classifies every
// outcome as success / ErrIncomplete / *CorruptError, and a successful
// decode re-encodes to exactly the consumed prefix. The streaming Reader
// must agree with the flat decoder on the same bytes.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeHeader(0))
	f.Add(AppendEntry(nil, 1, []byte("seed")))
	f.Add(AppendEntry(AppendEntry(nil, 7, []byte("a")), 8, bytes.Repeat([]byte{0xee}, 300)))
	f.Add(AppendEntry(nil, 42, nil))
	f.Add([]byte{0x78, 0x57, 0x4c, 0x31, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, n, err := DecodeEntry(data)
		switch {
		case err == nil:
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			reenc := AppendEntry(nil, seq, payload)
			if !bytes.Equal(reenc, data[:n]) {
				t.Fatalf("re-encode mismatch: %x != %x", reenc, data[:n])
			}
		case errors.Is(err, ErrIncomplete):
			// More bytes could complete the frame; nothing to check.
		default:
			var cerr *CorruptError
			if !errors.As(err, &cerr) {
				t.Fatalf("unclassified decode error: %v", err)
			}
		}

		// The streaming reader sees the same bytes: its first result must
		// match the flat decoder's (modulo its extra monotonicity rule,
		// which cannot fire on the first entry above base 0).
		rseq, rpayload, rerr := NewReader(bytes.NewReader(data), 0).Next()
		switch {
		case err == nil && seq > 0:
			if rerr != nil || rseq != seq || !bytes.Equal(rpayload, payload) {
				t.Fatalf("reader disagrees: (%d, %x, %v) vs (%d, %x)", rseq, rpayload, rerr, seq, payload)
			}
		case err == nil && seq == 0:
			// Valid frame with seq 0: the reader rejects it as non-increasing.
			var cerr *CorruptError
			if !errors.As(rerr, &cerr) {
				t.Fatalf("reader accepted seq 0: %v", rerr)
			}
		case errors.Is(err, ErrIncomplete):
			if len(data) == 0 {
				if rerr != io.EOF {
					t.Fatalf("reader on empty input: %v", rerr)
				}
				break
			}
			if !errors.Is(rerr, ErrIncomplete) {
				t.Fatalf("reader on torn frame: %v", rerr)
			}
		default:
			var cerr *CorruptError
			if !errors.As(rerr, &cerr) {
				t.Fatalf("reader on corrupt frame: %v", rerr)
			}
		}
	})
}
