package pathindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildErrors(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 1, Root: xmltree.Figure2a()},
		{ID: 1, Root: xmltree.Figure2b()},
	}
	if _, err := Build(docs); err == nil {
		t.Fatal("duplicate ids should fail")
	}
}

func TestSimplePathNoVerification(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure2a()},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(query.MustParse("/P/D/L"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1}) {
		t.Fatalf("got %v", got)
	}
	st := ix.LastStats()
	if st.Verified != 0 {
		t.Fatalf("simple path should not verify: %+v", st)
	}
	if st.Lookups != 1 {
		t.Fatalf("simple path should be one lookup: %+v", st)
	}
}

func TestValuePathLookup(t *testing.T) {
	ix, err := Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(query.MustParse("/P/D/L[text='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("got %v", got)
	}
	none, err := ix.Query(query.MustParse("/P/D/L[text='zurich']"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("got %v", none)
	}
}

func TestBranchingVerifies(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure2a()}, // P(R, D(L), D(M))
		{ID: 1, Root: xmltree.Figure2c()}, // P(D(L,M))
	})
	if err != nil {
		t.Fatal(err)
	}
	// The decomposed paths P/D/L and P/D/M exist in both docs; only the
	// verification step separates them.
	got, err := ix.Query(query.MustParse("/P/D[L][M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{1}) {
		t.Fatalf("got %v want [1]", got)
	}
	if ix.LastStats().Verified == 0 {
		t.Fatal("branching query should verify candidates")
	}
}

func TestWildcardAndDescendantExpansion(t *testing.T) {
	ix, err := Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want []int32
	}{
		{"/P/*/M", []int32{0}},
		{"//N[text='GUI']", []int32{0}},
		{"/P//M[text='mary']", []int32{0}},
		{"//Z", nil},
	}
	for _, c := range cases {
		got, err := ix.Query(query.MustParse(c.q))
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, c.want) {
			t.Fatalf("%s: got %v want %v", c.q, got, c.want)
		}
	}
}

func TestDataGuideSize(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure1()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumPaths() == 0 {
		t.Fatal("empty DataGuide")
	}
	// Identical documents: postings are 2 per path.
	if ix.NumPostings() != 2*ix.NumPaths() {
		t.Fatalf("postings = %d paths = %d", ix.NumPostings(), ix.NumPaths())
	}
}

func randomTree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	var n *xmltree.Node
	if isRoot {
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1, fan, false))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

func TestQuickPathIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1010))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 10; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3, true)})
		}
		ix, err := Build(docs)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			want := query.Eval(docs, pat)
			got, err := ix.Query(pat)
			if err != nil {
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch for %s: got %v want %v", pat, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
