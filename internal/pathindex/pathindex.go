// Package pathindex implements the query-by-path baseline of Table 8: a
// DataGuide-like structure (Goldman & Widom, VLDB 1997) mapping every
// distinct root-to-node path of the corpus to the posting list of documents
// containing it. A simple (non-branching) path query is a single posting
// lookup — which is why the paper's Table 8 shows query-by-path winning on
// Q1 — while branching patterns, wildcards, and value predicates force
// posting intersections plus per-document structural verification, the join
// work the sequence index avoids.
package pathindex

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// Index is a path index over a corpus.
type Index struct {
	docs []*xmltree.Document
	// postings maps a path key ("a/b/c" or "a/b/=v" for values) to the
	// sorted, deduplicated ids of documents containing that path.
	postings map[string][]int32
	// allPaths lists the distinct path keys (the DataGuide itself), used
	// to expand wildcard and descendant steps.
	allPaths []string
	// lastStats of the most recent query.
	lastStats QueryStats
}

// QueryStats reports one query's work profile.
type QueryStats struct {
	// Lookups counts posting-list fetches.
	Lookups int
	// ScannedPostings counts posting entries flowing through joins.
	ScannedPostings int
	// Verified counts per-document structural verifications.
	Verified int
}

// Build constructs the path index.
func Build(docs []*xmltree.Document) (*Index, error) {
	ix := &Index{docs: docs, postings: map[string][]int32{}}
	seen := map[int32]bool{}
	for _, d := range docs {
		if seen[d.ID] {
			return nil, fmt.Errorf("pathindex: duplicate document id %d", d.ID)
		}
		seen[d.ID] = true
		paths := map[string]bool{}
		collectPaths(d.Root, "", paths)
		for p := range paths {
			ix.postings[p] = append(ix.postings[p], d.ID)
		}
	}
	for p := range ix.postings {
		ids := ix.postings[p]
		slices.Sort(ids)
		ix.postings[p] = ids
		ix.allPaths = append(ix.allPaths, p)
	}
	sort.Strings(ix.allPaths)
	return ix, nil
}

func collectPaths(n *xmltree.Node, prefix string, out map[string]bool) {
	var key string
	if n.IsValue {
		key = prefix + "/=" + n.Value
	} else {
		key = prefix + "/" + n.Name
	}
	out[key] = true
	for _, c := range n.Children {
		collectPaths(c, key, out)
	}
}

// NumPaths reports the DataGuide size (distinct paths).
func (ix *Index) NumPaths() int { return len(ix.postings) }

// NumPostings reports the total posting count.
func (ix *Index) NumPostings() int {
	total := 0
	for _, ps := range ix.postings {
		total += len(ps)
	}
	return total
}

// LastStats returns the work counters of the most recent Query.
func (ix *Index) LastStats() QueryStats { return ix.lastStats }

// Query answers a tree-pattern query: the pattern is decomposed into its
// root-to-leaf simple paths, each resolved against the DataGuide (wildcards
// and descendant steps expand over the stored path set), the posting lists
// are intersected, and — unless the pattern is a single simple path —
// every candidate is verified structurally.
func (ix *Index) Query(pat *query.Pattern) ([]int32, error) {
	ix.lastStats = QueryStats{}
	if pat == nil || pat.Root == nil {
		return nil, fmt.Errorf("pathindex: empty pattern")
	}
	leafPaths := decompose(pat)
	var cand []int32
	for i, lp := range leafPaths {
		docs := ix.lookupPattern(lp)
		if i == 0 {
			cand = docs
		} else {
			cand = intersectSorted(cand, docs)
		}
		if len(cand) == 0 {
			break
		}
	}
	// A non-branching pattern needs no verification: containment of a
	// matching path IS the match.
	if !pat.HasBranching() {
		return cand, nil
	}
	byID := map[int32]*xmltree.Document{}
	for _, d := range ix.docs {
		byID[d.ID] = d
	}
	var out []int32
	for _, id := range cand {
		ix.lastStats.Verified++
		if d := byID[id]; d != nil && pat.MatchesTree(d.Root) {
			out = append(out, id)
		}
	}
	return out, nil
}

// pathPattern is one root-to-leaf path of the pattern: steps with axes.
type pathStep struct {
	axis     query.Axis
	wildcard bool
	isValue  bool
	name     string // value text for value steps
}

// decompose flattens the pattern into its root-to-leaf step chains.
func decompose(pat *query.Pattern) [][]pathStep {
	var out [][]pathStep
	var walk func(n *query.PNode, prefix []pathStep)
	walk = func(n *query.PNode, prefix []pathStep) {
		step := pathStep{axis: n.Axis, wildcard: n.Wildcard, isValue: n.IsValue, name: n.Name}
		if n.IsValue {
			step.name = n.Value
		}
		chain := append(append([]pathStep{}, prefix...), step)
		if len(n.Children) == 0 {
			out = append(out, chain)
			return
		}
		for _, c := range n.Children {
			walk(c, chain)
		}
	}
	walk(pat.Root, nil)
	return out
}

// lookupPattern resolves one step chain against the DataGuide: exact chains
// hit a single posting list; wildcard or descendant steps scan the stored
// path set with a segment matcher and union postings.
func (ix *Index) lookupPattern(steps []pathStep) []int32 {
	if exact, ok := exactKey(steps); ok {
		ix.lastStats.Lookups++
		ps := ix.postings[exact]
		ix.lastStats.ScannedPostings += len(ps)
		return ps
	}
	// Expand over the DataGuide.
	var union []int32
	for _, p := range ix.allPaths {
		if matchesKey(steps, p) {
			ix.lastStats.Lookups++
			ps := ix.postings[p]
			ix.lastStats.ScannedPostings += len(ps)
			union = append(union, ps...)
		}
	}
	return dedupSorted(union)
}

// exactKey builds the posting key when the chain has only child axes and no
// wildcards.
func exactKey(steps []pathStep) (string, bool) {
	var b strings.Builder
	for i, s := range steps {
		if s.wildcard || (s.axis == query.AxisDescendant && i != 0) {
			return "", false
		}
		if i == 0 && s.axis == query.AxisDescendant {
			return "", false
		}
		if s.isValue {
			b.WriteString("/=")
		} else {
			b.WriteString("/")
		}
		b.WriteString(s.name)
	}
	return b.String(), true
}

// matchesKey tests a stored path key against a step chain with wildcards
// and descendant axes (the chain must match the FULL key).
func matchesKey(steps []pathStep, key string) bool {
	segs := strings.Split(strings.TrimPrefix(key, "/"), "/")
	var match func(si, ki int) bool
	match = func(si, ki int) bool {
		if si == len(steps) {
			return ki == len(segs)
		}
		s := steps[si]
		if s.axis == query.AxisDescendant {
			// The step may match at any deeper segment.
			for k := ki; k < len(segs); k++ {
				if segMatches(s, segs[k]) && match(si+1, k+1) {
					return true
				}
			}
			return false
		}
		if ki >= len(segs) || !segMatches(s, segs[ki]) {
			return false
		}
		return match(si+1, ki+1)
	}
	// The first step anchors at the root (AxisChild) or anywhere
	// (AxisDescendant, handled inside match).
	return match(0, 0)
}

func segMatches(s pathStep, seg string) bool {
	isValueSeg := strings.HasPrefix(seg, "=")
	if s.isValue {
		return isValueSeg && seg[1:] == s.name
	}
	if isValueSeg {
		return false
	}
	return s.wildcard || seg == s.name
}

func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func dedupSorted(s []int32) []int32 {
	if len(s) == 0 {
		return nil
	}
	slices.Sort(s)
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
