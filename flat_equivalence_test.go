package xseq

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xseq/internal/datagen"
)

// TestFlatEquivalence is the acceptance suite for the flat layout: built
// with Config{Layout: LayoutFlat}, an index must return exactly the sorted
// document ids the monolithic index returns — plain, verified, explained,
// and limit queries — over both test corpora.
func TestFlatEquivalence(t *testing.T) {
	cases := []struct {
		corpus  string
		queries []string
	}{
		{"xmark", []string{
			datagen.XMarkQ1,
			datagen.XMarkQ2,
			datagen.XMarkQ3,
			"/site//person/name",
			"//item/location",
			"//date",
			"/site/*",
		}},
		{"L3F5A25I0P40", []string{
			"/e1",
			"/e1/e2",
			"//e3",
			"/e1/*",
			"//e2//*",
		}},
	}
	for _, c := range cases {
		docs := genCorpus(t, c.corpus, 250)
		mono, err := Build(docs, Config{KeepDocuments: true})
		if err != nil {
			t.Fatalf("%s: monolithic build: %v", c.corpus, err)
		}
		fl, err := Build(docs, Config{KeepDocuments: true, Layout: LayoutFlat})
		if err != nil {
			t.Fatalf("%s: flat build: %v", c.corpus, err)
		}
		if got := fl.Layout(); got != "flat" {
			t.Fatalf("%s: Layout() = %q, want flat", c.corpus, got)
		}
		st := fl.Stats()
		if st.Documents != len(docs) {
			t.Fatalf("%s: stats %+v", c.corpus, st)
		}
		if st.Flat == nil || st.Flat.MappedBytes == 0 {
			t.Fatalf("%s: Stats().Flat missing for flat layout: %+v", c.corpus, st.Flat)
		}
		for _, q := range c.queries {
			want, err := mono.Query(q)
			if err != nil {
				t.Fatalf("%s: mono %s: %v", c.corpus, q, err)
			}
			got, err := fl.Query(q)
			if err != nil {
				t.Fatalf("%s: flat %s: %v", c.corpus, q, err)
			}
			if !equalIDSlices(got, want) {
				t.Fatalf("%s: %s: flat %v, monolithic %v", c.corpus, q, got, want)
			}

			wantV, err := mono.QueryVerified(q)
			if err != nil {
				t.Fatalf("%s: mono verified %s: %v", c.corpus, q, err)
			}
			gotV, err := fl.QueryVerified(q)
			if err != nil {
				t.Fatalf("%s: flat verified %s: %v", c.corpus, q, err)
			}
			if !equalIDSlices(gotV, wantV) {
				t.Fatalf("%s: verified %s: flat %v, monolithic %v", c.corpus, q, gotV, wantV)
			}

			gotE, _, err := fl.QueryExplain(q)
			if err != nil {
				t.Fatalf("%s: explain %s: %v", c.corpus, q, err)
			}
			if !equalIDSlices(gotE, want) {
				t.Fatalf("%s: explain %s: %v, want %v", c.corpus, q, gotE, want)
			}

			full, err := fl.QueryLimit(q, len(want)+1)
			if err != nil {
				t.Fatalf("%s: limit %s: %v", c.corpus, q, err)
			}
			if !equalIDSlices(full, want) {
				t.Fatalf("%s: limit(all) %s: %v, want %v", c.corpus, q, full, want)
			}
			if len(want) > 1 {
				part, err := fl.QueryLimit(q, len(want)-1)
				if err != nil {
					t.Fatalf("%s: limit %s: %v", c.corpus, q, err)
				}
				if len(part) != len(want)-1 {
					t.Fatalf("%s: limit(%d) %s returned %d ids", c.corpus, len(want)-1, q, len(part))
				}
				members := make(map[int32]bool, len(want))
				for _, id := range want {
					members[id] = true
				}
				for _, id := range part {
					if !members[id] {
						t.Fatalf("%s: limit %s: id %d not in full result", c.corpus, q, id)
					}
				}
			}
		}
	}
}

// TestFlatSnapshotRoundtrip covers the persistence surface: SaveFlatFile
// from a heap index, LoadFile sniffing the flat magic (the O(dictionary)
// mapped open), Save/Load stream round-trips of the flat index itself, and
// the sharded → flat conversion path.
func TestFlatSnapshotRoundtrip(t *testing.T) {
	docs := genCorpus(t, "xmark", 120)
	mono, err := Build(docs, Config{KeepDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "x.flat")
	if err := mono.SaveFlatFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Layout() != "flat" {
		t.Fatalf("reloaded layout %q, want flat", back.Layout())
	}
	if err := back.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Stream round-trip: SaveFlat → Load sniffs the flat magic; the flat
	// index's own Save re-emits the identical bytes.
	var buf bytes.Buffer
	if err := mono.SaveFlat(&buf); err != nil {
		t.Fatal(err)
	}
	back2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back2.SaveFlat(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("flat SaveFlat of a flat index did not reproduce the bytes")
	}

	// Sharded → flat conversion rebuilds from the retained corpus.
	sh, err := Build(docs, Config{Shards: 3, KeepDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	shPath := filepath.Join(dir, "from-sharded.flat")
	if err := sh.SaveFlatFile(shPath); err != nil {
		t.Fatal(err)
	}
	back3, err := LoadFile(shPath)
	if err != nil {
		t.Fatal(err)
	}
	defer back3.Close()

	// Without retained documents the conversion refuses with ErrUnsupported.
	shBare, err := Build(docs, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := shBare.SaveFlat(&bytes.Buffer{}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("sharded-without-docs SaveFlat error = %v, want ErrUnsupported", err)
	}

	for _, q := range []string{datagen.XMarkQ1, "//date", "/site/*"} {
		want, _ := mono.Query(q)
		for i, ix := range []*Index{back, back2, back3} {
			got, err := ix.Query(q)
			if err != nil {
				t.Fatalf("copy %d: %s: %v", i, q, err)
			}
			if !equalIDSlices(got, want) {
				t.Fatalf("copy %d: %s: %v, want %v", i, q, got, want)
			}
		}
	}
}

// TestFlatBuildConfigValidation: Layout is validated up front.
func TestFlatBuildConfigValidation(t *testing.T) {
	docs := genCorpus(t, "xmark", 5)
	if _, err := Build(docs, Config{Layout: "zoned"}); err == nil {
		t.Fatal("unknown Layout accepted")
	}
	if _, err := Build(docs, Config{Layout: LayoutFlat, Shards: 2}); err == nil {
		t.Fatal("Layout=flat with Shards>1 accepted")
	}
}

// TestFlatCorruptSnapshot: a damaged flat snapshot never displaces a
// serving one. Damage in the dictionary head fails LoadFile itself; damage
// in the bulk sections passes the O(dictionary) open but is caught by the
// Swapper's full verification sweep before publishing. Either way the old
// snapshot keeps answering.
func TestFlatCorruptSnapshot(t *testing.T) {
	docs := genCorpus(t, "xmark", 60)
	mono, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.flat")
	if err := mono.SaveFlatFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwapper(good)
	// Replacements arrive by atomic rename (SaveFlatFile's contract): the
	// serving snapshot mmaps the old inode, which an in-place overwrite
	// would mutate underneath it.
	replace := func(data []byte) {
		t.Helper()
		tmp := path + ".next"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a bit at several depths: header, dictionary head, bulk payload.
	for _, off := range []int{9, len(blob) / 8, len(blob) / 2, len(blob) - 4} {
		mut := bytes.Clone(blob)
		mut[off] ^= 0x20
		replace(mut)
		cur, err := sw.SwapFromFile(path)
		if err == nil {
			t.Fatalf("flip at %d: SwapFromFile accepted a corrupt flat snapshot", off)
		}
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("flip at %d: error %v, want *CorruptError", off, err)
		}
		if cur != good || sw.Current() != good {
			t.Fatalf("flip at %d: corrupt reload displaced the serving snapshot", off)
		}
		if _, err := sw.Current().QueryContext(context.Background(), "//date"); err != nil {
			t.Fatalf("flip at %d: surviving snapshot cannot answer: %v", off, err)
		}
	}
	// Intact file swaps in fine afterwards.
	replace(blob)
	if _, err := sw.SwapFromFile(path); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
}
