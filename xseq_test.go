package xseq

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const projectXML = `
<P>
  xml
  <R><M>tom</M><L>newyork</L></R>
  <D>
    <M>johnson</M>
    <U><M>mary</M><N>GUI</N></U>
    <U><N>engine</N></U>
    <L>boston</L>
  </D>
</P>`

func buildCorpus(t *testing.T, cfg Config) *Index {
	t.Helper()
	var docs []*Document
	sources := []string{
		projectXML,
		`<P><R><L>boston</L></R></P>`,
		`<P><D><L>newyork</L><M>smith</M></D></P>`,
	}
	for i, src := range sources {
		d, err := ParseDocumentString(int32(i+1), src)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	ix, err := Build(docs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestQuickstartFlow(t *testing.T) {
	ix := buildCorpus(t, Config{})
	cases := []struct {
		q    string
		want []int32
	}{
		{"/P/D/L[text='boston']", []int32{1}},
		{"//L[text='boston']", []int32{1, 2}},
		{"/P[R][D]", []int32{1}},
		{"/P/*/L", []int32{1, 2, 3}},
		{"//U/N[text='engine']", []int32{1}},
		{"/P/D[L='newyork'][M='smith']", []int32{3}},
		{"//nothing", nil},
	}
	for _, c := range cases {
		got, err := ix.Query(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %v want %v", c.q, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: got %v want %v", c.q, got, c.want)
			}
		}
	}
}

func TestStats(t *testing.T) {
	ix := buildCorpus(t, Config{})
	s := ix.Stats()
	if s.Documents != 3 || s.IndexNodes == 0 || s.Links == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.EstimatedDiskBytes != 4*3+8*int64(s.IndexNodes) {
		t.Fatalf("disk bytes = %d", s.EstimatedDiskBytes)
	}
}

func TestQueryVerified(t *testing.T) {
	ix := buildCorpus(t, Config{KeepDocuments: true, ValueSpace: 4}) // tiny space forces collisions
	got, err := ix.QueryVerified("/P/D/L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("verified = %v", got)
	}
	// Without KeepDocuments, QueryVerified errors.
	ix2 := buildCorpus(t, Config{})
	if _, err := ix2.QueryVerified("/P"); err == nil {
		t.Fatal("QueryVerified without KeepDocuments should fail")
	}
}

func TestWeights(t *testing.T) {
	ix := buildCorpus(t, Config{Weights: map[string]float64{"P/D/L": 50}})
	got, err := ix.Query("/P/D/L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("weighted query = %v", got)
	}
	// Unknown weight paths fail at build time.
	d, _ := ParseDocumentString(1, "<a><b>x</b></a>")
	if _, err := Build([]*Document{d}, Config{Weights: map[string]float64{"a/zzz": 2}}); err == nil {
		t.Fatal("unknown weight path should fail")
	}
}

func TestPagedIO(t *testing.T) {
	ix := buildCorpus(t, Config{})
	pages, err := ix.EnablePagedIO(8)
	if err != nil {
		t.Fatal(err)
	}
	if pages <= 0 {
		t.Fatalf("pages = %d", pages)
	}
	if _, err := ix.Query("//L"); err != nil {
		t.Fatal(err)
	}
	if ix.IO().Reads == 0 || ix.IO().DiskAccesses == 0 {
		t.Fatalf("io = %+v", ix.IO())
	}
	ix.ResetIO()
	if ix.IO().Reads != 0 {
		t.Fatal("ResetIO kept counters")
	}
	ix.DropIOCache()
	ix.DisablePagedIO()
	if ix.IO().Reads != 0 {
		t.Fatal("detached IO should be zero")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("empty corpus should fail")
	}
	if _, err := Build([]*Document{nil}, Config{}); err == nil {
		t.Fatal("nil document should fail")
	}
}

func TestQueryParseError(t *testing.T) {
	ix := buildCorpus(t, Config{})
	if _, err := ix.Query("/a["); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := ix.QueryVerified("/a["); err == nil {
		t.Fatal("bad verified query should fail")
	}
}

func TestDocumentAccessors(t *testing.T) {
	d, err := ParseDocumentString(9, "<a><b>x</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() != 9 || d.NumNodes() != 3 {
		t.Fatalf("id=%d nodes=%d", d.ID(), d.NumNodes())
	}
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<b>x</b>") {
		t.Fatalf("xml = %q", buf.String())
	}
	if d.String() != `a(b("x"))` {
		t.Fatalf("String = %q", d.String())
	}
	if _, err := ParseDocumentString(1, "not xml"); err == nil {
		t.Fatal("bad xml should fail")
	}
}

func TestBulkLoadConfig(t *testing.T) {
	ix := buildCorpus(t, Config{BulkLoad: true})
	got, err := ix.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("bulk-loaded query = %v", got)
	}
}

func TestSchemaOutline(t *testing.T) {
	ix := buildCorpus(t, Config{})
	out, err := ix.SchemaOutline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "P") || !strings.Contains(out, "p(C|root)") {
		t.Fatalf("outline = %q", out)
	}
	// Loaded indexes have no outline (but query fine).
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.SchemaOutline(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("loaded index outline err = %v, want ErrUnsupported", err)
	}
}

func TestFetchDocuments(t *testing.T) {
	ix := buildCorpus(t, Config{KeepDocuments: true})
	ids, err := ix.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	docs, err := ix.FetchDocuments(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(ids) {
		t.Fatalf("fetched %d of %d", len(docs), len(ids))
	}
	for i, d := range docs {
		if d.ID() != ids[i] {
			t.Fatalf("order broken: %d vs %d", d.ID(), ids[i])
		}
	}
	// Unknown ids are skipped.
	some, err := ix.FetchDocuments([]int32{ids[0], 9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 1 {
		t.Fatalf("unknown id fetched: %v", some)
	}
	// Without KeepDocuments it errors.
	ix2 := buildCorpus(t, Config{})
	if _, err := ix2.FetchDocuments(ids); err == nil {
		t.Fatal("FetchDocuments without KeepDocuments should fail")
	}
}

func TestQueryExplainAndLimit(t *testing.T) {
	ix := buildCorpus(t, Config{})
	ids, ex, err := ix.QueryExplain("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ex.Results != 2 {
		t.Fatalf("ids=%v explain=%+v", ids, ex)
	}
	if ex.Instances == 0 || ex.LinkProbes == 0 || ex.EntriesScanned == 0 {
		t.Fatalf("explain counters empty: %+v", ex)
	}
	capped, err := ix.QueryLimit("//L[text='boston']", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 {
		t.Fatalf("capped = %v", capped)
	}
	if _, _, err := ix.QueryExplain("/["); err == nil {
		t.Fatal("bad explain query should fail")
	}
	if _, err := ix.QueryLimit("/[", 1); err == nil {
		t.Fatal("bad limit query should fail")
	}
}

func TestDynamicIndexFacade(t *testing.T) {
	d0, _ := ParseDocumentString(0, `<P><R><L>boston</L></R></P>`)
	dyn, err := BuildDynamic([]*Document{d0}, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := ParseDocumentString(1, `<P><D><L>boston</L></D></P>`)
	if err := dyn.Insert(d1); err != nil {
		t.Fatal(err)
	}
	got, err := dyn.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("dynamic query = %v", got)
	}
	if dyn.PendingDocuments() != 1 || dyn.NumDocuments() != 2 {
		t.Fatalf("pending=%d docs=%d", dyn.PendingDocuments(), dyn.NumDocuments())
	}
	if err := dyn.Compact(); err != nil {
		t.Fatal(err)
	}
	if dyn.PendingDocuments() != 0 {
		t.Fatal("compact left pending docs")
	}
	got2, err := dyn.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 {
		t.Fatalf("post-compact query = %v", got2)
	}
	if err := dyn.Insert(nil); err == nil {
		t.Fatal("nil insert should fail")
	}
	if _, err := dyn.Query("/["); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := BuildDynamic([]*Document{nil}, Config{}, 0); err == nil {
		t.Fatal("nil initial doc should fail")
	}
}

func TestSaveLoadFacade(t *testing.T) {
	ix := buildCorpus(t, Config{KeepDocuments: true})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Stats(), ix.Stats()) {
		t.Fatalf("stats changed: %+v vs %+v", back.Stats(), ix.Stats())
	}
	for _, q := range []string{"//L[text='boston']", "/P[R][D]", "/P/*/L"} {
		want, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: loaded %v want %v", q, got, want)
		}
	}
	// Verified queries survive (documents serialized).
	v, err := back.QueryVerified("/P/D/L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("verified after load = %v", v)
	}
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad stream should fail")
	}
}

func TestTextValuesConfig(t *testing.T) {
	var docs []*Document
	for i, city := range []string{"boston", "bologna", "newyork"} {
		d, err := ParseDocumentString(int32(i), "<P><L>"+city+"</L></P>")
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	ix, err := Build(docs, Config{TextValues: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query("/P/L[text='bo*']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("prefix query = %v", got)
	}
	exact, err := ix.Query("/P/L[text='newyork']")
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 1 || exact[0] != 2 {
		t.Fatalf("exact text query = %v", exact)
	}
}

func TestMixedRootCorpus(t *testing.T) {
	a, _ := ParseDocumentString(1, "<article><title>t1</title></article>")
	b, _ := ParseDocumentString(2, "<book><isbn>i1</isbn></book>")
	ix, err := Build([]*Document{a, b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query("/book/isbn")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("forest query = %v", got)
	}
}

func TestQueryLimitContext(t *testing.T) {
	ix := buildCorpus(t, Config{})
	ids, err := ix.QueryLimitContext(context.Background(), "//L[text='boston']", 1)
	if err != nil || len(ids) != 1 {
		t.Fatalf("limited = %v, %v", ids, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryLimitContext(ctx, "//L[text='boston']", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled limit query = %v, want context.Canceled", err)
	}
	if _, err := ix.QueryLimitContext(context.Background(), "/[", 1); err == nil {
		t.Fatal("bad query should fail")
	}
	// The plain entry point must stay equivalent.
	plain, err := ix.QueryLimit("//L[text='boston']", 1)
	if err != nil || len(plain) != 1 {
		t.Fatalf("QueryLimit = %v, %v", plain, err)
	}
}

func TestSwapper(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.idx")
	ix1 := buildCorpus(t, Config{})
	if err := ix1.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	sw := NewSwapper(ix1)
	if sw.Current() != ix1 {
		t.Fatal("Current != initial")
	}
	if sw.Swap(nil) != ix1 || sw.Current() != ix1 {
		t.Fatal("Swap(nil) must keep the current snapshot published")
	}

	// Successful file swap publishes the fresh snapshot.
	got, err := sw.SwapFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == ix1 || sw.Current() != got {
		t.Fatal("SwapFromFile did not publish the fresh snapshot")
	}
	if ids, err := sw.Current().Query("//L[text='boston']"); err != nil || len(ids) != 2 {
		t.Fatalf("swapped snapshot query = %v, %v", ids, err)
	}

	// A corrupt file must leave the old snapshot serving.
	prev := sw.Current()
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	cur, err := sw.SwapFromFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt swap error = %v, want *CorruptError", err)
	}
	if cur != prev || sw.Current() != prev {
		t.Fatal("corrupt swap must not disturb the published snapshot")
	}

	// Nil-seeded swapper serves nothing until the first success.
	empty := NewSwapper(nil)
	if empty.Current() != nil {
		t.Fatal("nil-seeded Current != nil")
	}
	if _, err := empty.SwapFromFile(path); err == nil {
		t.Fatal("corrupt first swap should fail")
	}
	if empty.Current() != nil {
		t.Fatal("failed first swap must not publish anything")
	}
}

func TestDynamicHealth(t *testing.T) {
	d0, _ := ParseDocumentString(0, `<P><R><L>boston</L></R></P>`)
	dyn, err := BuildDynamic([]*Document{d0}, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := dyn.Health()
	if h.Degraded || h.Documents != 1 || h.Pending != 0 || h.FailedCompactions != 0 {
		t.Fatalf("fresh health = %+v", h)
	}

	// Drive an automatic compaction into failure with an already-cancelled
	// context: the insert lands, the old state keeps serving, and Health
	// reports degraded-but-serving.
	d1, _ := ParseDocumentString(1, `<P><D><L>boston</L></D></P>`)
	if err := dyn.Insert(d1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d2, _ := ParseDocumentString(2, `<P><R><L>newyork</L></R></P>`)
	err = dyn.InsertContext(ctx, d2)
	var cerr *CompactionError
	if !errors.As(err, &cerr) {
		t.Fatalf("cancelled auto-compaction = %v, want *CompactionError", err)
	}
	h = dyn.Health()
	if !h.Degraded || h.LastCompactionError == "" || h.FailedCompactions != 1 || h.Compactions != 0 {
		t.Fatalf("degraded health = %+v", h)
	}
	if h.Documents != 3 || h.Pending != 2 {
		t.Fatalf("degraded health counts = %+v", h)
	}
	// Still serving: all three documents answer.
	if ids, err := dyn.Query("//L"); err != nil || len(ids) != 3 {
		t.Fatalf("degraded query = %v, %v", ids, err)
	}

	// A successful compaction heals the summary.
	if err := dyn.Compact(); err != nil {
		t.Fatal(err)
	}
	h = dyn.Health()
	if h.Degraded || h.LastCompactionError != "" || h.Compactions != 1 || h.FailedCompactions != 1 || h.Pending != 0 {
		t.Fatalf("healed health = %+v", h)
	}
}
