package xseq

import (
	"fmt"
	"os"

	"xseq/internal/xmltree"
)

// LoadCorpusFile reads a corpus file in the format cmd/xseqgen emits — a
// single wrapper element whose children are the records — and returns one
// Document per record, ids assigned by child position. This is the
// ingestion path xseqquery and xseqflat share; parsing runs under the
// default ParseOptions resource limits.
func LoadCorpusFile(path string) (docs []*Document, err error) {
	defer guard(&err)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	root, err := xmltree.Parse(f, xmltree.ParseOptions{})
	if err != nil {
		return nil, err
	}
	if len(root.Children) == 0 {
		return nil, fmt.Errorf("xseq: corpus %s has no records", path)
	}
	for i, rec := range root.Children {
		if rec.IsValue {
			continue
		}
		docs = append(docs, &Document{id: int32(i), root: rec})
	}
	return docs, nil
}
