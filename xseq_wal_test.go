package xseq

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xseq/internal/wal"
)

func walDoc(t *testing.T, id int32, city string) *Document {
	t.Helper()
	d, err := ParseDocumentString(id, fmt.Sprintf(`<P><R><L>%s</L></R></P>`, city))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWALCrashRecovery(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	cfg := Config{WALPath: walPath}

	dyn, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 10; i++ {
		if err := dyn.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if dyn.AppliedSeq() != 10 {
		t.Fatalf("applied seq = %d", dyn.AppliedSeq())
	}
	// Crash: the process dies without Close. Every acknowledged insert was
	// fsynced, so a fresh process over the same log sees all of them.
	again, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	dyn.Close() // release the abandoned handle so the tempdir can go

	if again.NumDocuments() != 10 || again.AppliedSeq() != 10 {
		t.Fatalf("recovered docs=%d seq=%d", again.NumDocuments(), again.AppliedSeq())
	}
	ids, err := again.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("recovered query = %v", ids)
	}
	st := again.WALStats()
	if st == nil || st.ReplayedEntries != 10 || st.LastSeq != 10 {
		t.Fatalf("wal stats = %+v", st)
	}
	// Recovery is idempotent: inserts resume with the next seq and a third
	// replay sees the union.
	if err := again.Insert(walDoc(t, 10, "boston")); err != nil {
		t.Fatal(err)
	}
	if again.AppliedSeq() != 11 {
		t.Fatalf("resumed seq = %d", again.AppliedSeq())
	}
}

func TestWALTornTailLenientAndStrict(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	dyn, err := BuildDynamic(nil, Config{WALPath: walPath}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.Insert(walDoc(t, 1, "boston")); err != nil {
		t.Fatal(err)
	}
	if err := dyn.Insert(walDoc(t, 2, "chicago")); err != nil {
		t.Fatal(err)
	}
	dyn.Close()

	// Tear the tail: chop bytes off the last entry, as a crash mid-append
	// would.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict mode refuses the torn log with a typed error.
	_, err = BuildDynamic(nil, Config{WALPath: walPath, WALStrict: true}, 0)
	var cerr *WALCorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("strict open = %v, want *WALCorruptError", err)
	}

	// Default mode truncates at the tear and serves the durable prefix.
	dyn2, err := BuildDynamic(nil, Config{WALPath: walPath}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dyn2.Close()
	if dyn2.NumDocuments() != 1 || dyn2.AppliedSeq() != 1 {
		t.Fatalf("lenient recovery docs=%d seq=%d", dyn2.NumDocuments(), dyn2.AppliedSeq())
	}
	if st := dyn2.WALStats(); st.ReplayTruncatedBytes == 0 {
		t.Fatalf("truncation not reported: %+v", st)
	}
}

func TestWALCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	snapPath := filepath.Join(dir, "index.snap")
	cfg := Config{WALPath: walPath, KeepDocuments: true}

	dyn, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 6; i++ {
		if err := dyn.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	if err := dyn.Checkpoint(snapPath); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st := dyn.WALStats()
	if st.BaseSeq != 6 || st.Entries != 0 {
		t.Fatalf("wal after checkpoint: %+v", st)
	}
	// Post-checkpoint inserts land in the rotated log.
	for i := int32(6); i < 9; i++ {
		if err := dyn.Insert(walDoc(t, i, "chicago")); err != nil {
			t.Fatal(err)
		}
	}
	dyn.Close()

	// Restart recipe: snapshot corpus + same WAL path.
	snap, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := snap.StoredDocuments()
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != 6 {
		t.Fatalf("snapshot holds %d docs", len(initial))
	}
	back, err := BuildDynamic(initial, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.NumDocuments() != 9 || back.AppliedSeq() != 9 {
		t.Fatalf("restart docs=%d seq=%d", back.NumDocuments(), back.AppliedSeq())
	}
	boston, _ := back.Query("//L[text='boston']")
	chicago, _ := back.Query("//L[text='chicago']")
	if len(boston) != 6 || len(chicago) != 3 {
		t.Fatalf("restart queries: boston=%v chicago=%v", boston, chicago)
	}
}

func TestWALCheckpointOverlapReplaySkips(t *testing.T) {
	// A crash between the snapshot landing and the log rotating leaves
	// entries in the log that the snapshot already covers; replay must
	// skip them, not fail on duplicate ids.
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	snapPath := filepath.Join(dir, "index.snap")
	cfg := Config{WALPath: walPath, KeepDocuments: true}

	dyn, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 4; i++ {
		if err := dyn.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	if err := dyn.CheckpointContext(context.Background(), snapPath); err != nil {
		t.Fatal(err)
	}
	dyn.Close()
	// Undo the rotation by restoring a full log: rebuild one from scratch
	// with all four entries, so the snapshot (docs 0-3) and the log
	// (seqs 1-4) fully overlap.
	os.Remove(walPath)
	fresh, err := BuildDynamic(nil, Config{WALPath: walPath}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 4; i++ {
		if err := fresh.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	fresh.Close()

	snap, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := snap.StoredDocuments()
	if err != nil {
		t.Fatal(err)
	}
	back, err := BuildDynamic(initial, cfg, 0)
	if err != nil {
		t.Fatalf("restart over overlapping log: %v", err)
	}
	defer back.Close()
	if back.NumDocuments() != 4 || back.AppliedSeq() != 4 {
		t.Fatalf("docs=%d seq=%d", back.NumDocuments(), back.AppliedSeq())
	}
}

func TestWALReplicationApply(t *testing.T) {
	dir := t.TempDir()
	primary, err := BuildDynamic(nil, Config{WALPath: filepath.Join(dir, "primary.wal")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := BuildDynamic(nil, Config{WALPath: filepath.Join(dir, "follower.wal")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := int32(0); i < 5; i++ {
		if err := primary.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	// Tail the primary's log and apply each frame, as the HTTP follower
	// does.
	ctx := context.Background()
	for follower.AppliedSeq() < primary.AppliedSeq() {
		frames, n, _, err := primary.ReadWALFrames(follower.AppliedSeq()+1, 1<<20)
		if err != nil || n == 0 {
			t.Fatalf("read frames: n=%d err=%v", n, err)
		}
		rd := wal.NewReader(bytes.NewReader(frames), follower.AppliedSeq())
		for {
			seq, payload, err := rd.Next()
			if err != nil {
				break
			}
			if err := follower.ApplyReplicated(ctx, seq, payload); err != nil {
				t.Fatalf("apply seq %d: %v", seq, err)
			}
		}
	}
	// The follower answers identical queries.
	want, _ := primary.Query("//L[text='boston']")
	got, err := follower.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 5 {
		t.Fatalf("follower = %v, primary = %v", got, want)
	}
	// Out-of-order application is rejected.
	if err := follower.ApplyReplicated(ctx, 99, nil); err == nil {
		t.Fatal("gap accepted")
	}
	// A follower crash recovers from its own log and resumes at the right
	// position.
	follower.Close()
	back, err := BuildDynamic(nil, Config{WALPath: filepath.Join(dir, "follower.wal")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.AppliedSeq() != 5 || back.NumDocuments() != 5 {
		t.Fatalf("follower restart docs=%d seq=%d", back.NumDocuments(), back.AppliedSeq())
	}
}

func TestWALGroupCommitWindow(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	cfg := Config{WALPath: walPath, WALSyncWindow: 2 * time.Millisecond}
	dyn, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 20; i++ {
		if err := dyn.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	st := dyn.WALStats()
	if st.SyncedSeq != 20 {
		t.Fatalf("synced = %d", st.SyncedSeq)
	}
	dyn.Close()
	back, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.NumDocuments() != 20 {
		t.Fatalf("recovered %d docs", back.NumDocuments())
	}
}
