package xseq

import (
	"context"
	"fmt"
	"io"

	"xseq/internal/engine"
	"xseq/internal/flat"
	"xseq/internal/index"
	"xseq/internal/shard"
)

// LayoutFlat is the Config.Layout value selecting the flat single-file
// layout: the built index is immediately converted to the mmap-able flat
// format and queried in place. See SaveFlat for converting an existing
// index.
const LayoutFlat = "flat"

// Layout names the index's storage organization: "monolithic", "sharded",
// or "flat".
func (ix *Index) Layout() string {
	switch ix.baseEngine().(type) {
	case *flat.Index:
		return "flat"
	case *shard.Index:
		return "sharded"
	default:
		return "monolithic"
	}
}

// flatEngine returns the underlying flat engine, nil for other layouts.
func (ix *Index) flatEngine() *flat.Index {
	f, _ := ix.baseEngine().(*flat.Index)
	return f
}

// SaveFlat converts the index to the flat single-file format and writes it
// to w. A monolithic index converts directly; a flat index copies its
// bytes; a sharded index rebuilds one monolithic image from its retained
// corpus first (requires Config.KeepDocuments — without the documents
// there is nothing to rebuild from, and the error wraps ErrUnsupported).
// For a DynamicIndex, checkpoint it and convert the snapshot.
//
// The written snapshot is opened with Load/LoadFile like any other; opening
// it costs O(dictionary) regardless of corpus size, and on platforms with
// mmap the file is queried in place without being read up front.
func (ix *Index) SaveFlat(w io.Writer) (err error) {
	defer guard(&err)
	if f := ix.flatEngine(); f != nil {
		return f.Save(w)
	}
	ex, err := ix.flatExport()
	if err != nil {
		return err
	}
	return flat.Write(w, ex)
}

// SaveFlatFile is SaveFlat to a file, crash-safely (temp + fsync + atomic
// rename; a previous file at path survives a failure intact).
func (ix *Index) SaveFlatFile(path string) (err error) {
	defer guard(&err)
	if f := ix.flatEngine(); f != nil {
		return f.SaveFile(path)
	}
	ex, err := ix.flatExport()
	if err != nil {
		return err
	}
	return flat.WriteFile(path, ex)
}

// flatExport produces the flat-format source material for any heap engine.
func (ix *Index) flatExport() (*index.Export, error) {
	switch eng := ix.baseEngine().(type) {
	case *index.Index:
		return eng.Export()
	case *shard.Index:
		docs := eng.Documents()
		if docs == nil {
			return nil, fmt.Errorf("xseq: flat conversion of a sharded index requires Config.KeepDocuments (rebuilds one monolithic image from the corpus): %w", ErrUnsupported)
		}
		enc := eng.Shard(0).Encoder()
		rebuilt, _, err := buildPartition(context.Background(), docs, Config{
			ValueSpace:    enc.ValueSpace(),
			TextValues:    enc.TextValues(),
			KeepDocuments: true,
			BulkLoad:      true,
		}, false)
		if err != nil {
			return nil, fmt.Errorf("xseq: flat conversion rebuild: %w", err)
		}
		return rebuilt.Export()
	default:
		return nil, fmt.Errorf("xseq: flat conversion of layout %q: %w", ix.Layout(), ErrUnsupported)
	}
}

// VerifyIntegrity runs the deepest integrity pass the layout supports. For
// a flat snapshot that is the full checksum sweep over every section —
// opening only verifies the dictionary head, so this is what a serving
// layer calls before publishing a reloaded snapshot (corruption then keeps
// the old snapshot serving instead of surfacing mid-query). Heap layouts
// verified everything at load time already; for them this is a no-op.
// Damage is reported as a *CorruptError.
func (ix *Index) VerifyIntegrity() (err error) {
	defer guard(&err)
	if f := ix.flatEngine(); f != nil {
		return f.VerifyChecksums()
	}
	return nil
}

// Close releases resources the layout holds outside the Go heap — the mmap
// of a flat snapshot. Heap layouts close as a no-op. Idempotent; no
// queries may be in flight or issued afterwards. An unclosed flat index is
// unmapped by a finalizer when it becomes unreachable, so a Swapper
// dropping old snapshots without closing them does not leak mappings.
func (ix *Index) Close() error {
	if f := ix.flatEngine(); f != nil {
		return f.Close()
	}
	return nil
}

// FlatStats reports the flat layout's real storage figures — the
// resident-vs-mapped pair the paper's page-oriented cost model is about.
type FlatStats struct {
	// MappedBytes is the snapshot file size (the whole mapped image).
	MappedBytes int64
	// Pages is MappedBytes in 4 KiB pages.
	Pages int64
	// Mmapped reports whether the snapshot is memory-mapped (false: read
	// into the heap, the ReadAt fallback).
	Mmapped bool
	// PagerAttached reports whether page-level accounting is running
	// (EnablePagedIO). The fields below are zero without it.
	PagerAttached bool
	// ResidentPages and ResidentBytes count the distinct pages queries
	// have touched since the pager attached (bounded by the pool size).
	ResidentPages int64
	ResidentBytes int64
	// Reads, Hits, and DiskAccesses are the buffer-pool counters;
	// DiskAccesses (misses) is the paper's metric.
	Reads, Hits, DiskAccesses int64
}

// flatStats assembles FlatStats for a flat engine, nil otherwise.
func flatStats(eng engine.Engine) *FlatStats {
	f, ok := eng.(*flat.Index)
	if !ok {
		return nil
	}
	st := &FlatStats{
		MappedBytes: f.MappedBytes(),
		Pages:       f.TotalPages(),
		Mmapped:     f.Mmapped(),
	}
	if f.PagerAttached() {
		ps := f.PagerStats()
		st.PagerAttached = true
		st.ResidentPages = f.ResidentPages()
		st.ResidentBytes = st.ResidentPages * 4096
		st.Reads, st.Hits, st.DiskAccesses = ps.Reads, ps.Hits, ps.Misses
	}
	return st
}
