// Quickstart: index a handful of XML records with the public API and run
// tree-pattern queries against them — including the paper's Figure 4
// false-alarm case, which naive subsequence matching gets wrong and
// constraint matching gets right.
package main

import (
	"fmt"
	"log"

	"xseq"
)

func main() {
	// Three project records in the shape of the paper's Figure 1.
	sources := map[int32]string{
		1: `<Project>
		      <Research><Manager>tom</Manager><Location>newyork</Location></Research>
		      <Development>
		        <Manager>johnson</Manager>
		        <Unit><Manager>mary</Manager><Name>GUI</Name></Unit>
		        <Unit><Name>engine</Name></Unit>
		        <Location>boston</Location>
		      </Development>
		    </Project>`,
		2: `<Project>
		      <Research><Location>boston</Location></Research>
		    </Project>`,
		// The Figure 4 shape: two Location siblings, one holding Staff,
		// the other holding Budget.
		3: `<Project>
		      <Location><Staff>5</Staff></Location>
		      <Location><Budget>9000</Budget></Location>
		    </Project>`,
	}
	var docs []*xseq.Document
	for id, src := range sources {
		d, err := xseq.ParseDocumentString(id, src)
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, d)
	}

	ix, err := xseq.Build(docs, xseq.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	fmt.Printf("indexed %d records into %d trie nodes / %d path links (~%d bytes)\n\n",
		s.Documents, s.IndexNodes, s.Links, s.EstimatedDiskBytes)

	run := func(q, comment string) {
		ids, err := ix.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-58s -> %v   %s\n", q, ids, comment)
	}

	fmt.Println("— basic tree-pattern queries —")
	run("/Project/Development/Location[text='boston']", "value test")
	run("//Location[text='boston']", "anchored anywhere")
	run("/Project[Research][Development]", "branching pattern")
	run("/Project/*/Manager", "single-step wildcard")
	run("//Unit/Name[text='engine']", "descendant step")

	fmt.Println("\n— the Figure 4 false alarm —")
	fmt.Println("record 3 has TWO Location siblings: one with Staff, one with Budget.")
	run("/Project/Location[Staff][Budget]",
		"one Location over both: NO match (constraint matching rejects the false alarm)")
	run("/Project[Location/Staff][Location/Budget]",
		"two separate Location branches: matches record 3")
}
