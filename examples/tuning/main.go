// Tuning: demonstrate the performance-oriented sequencing principle's
// second lever (Section 5.2, Eq 6): assigning a weight w(C) to a frequently
// queried, highly selective element makes it sequence earlier, so queries
// that use it cut the search space sooner. The program builds the same
// corpus twice — unweighted and with the selective element promoted — and
// compares simulated disk accesses and time for the same query workload.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"xseq"
	"xseq/internal/datagen"
	"xseq/internal/xmltree"
)

func main() {
	n := flag.Int("n", 20000, "number of auction records")
	pool := flag.Int("pool", 64, "buffer pool pages")
	repeats := flag.Int("repeats", 50, "query repetitions per measurement")
	flag.Parse()

	_, raw, err := datagen.XMark(datagen.XMarkOptions{IdenticalSiblings: false, Seed: 23}, *n)
	if err != nil {
		log.Fatal(err)
	}
	docs := make([]*xseq.Document, len(raw))
	for i, d := range raw {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, d.Root); err != nil {
			log.Fatal(err)
		}
		if docs[i], err = xseq.ParseDocumentString(d.ID, buf.String()); err != nil {
			log.Fatal(err)
		}
	}

	// The workload: creditcard lookups. Unweighted, creditcard sequences
	// AFTER the person's name — and names are near-unique, so by the time
	// the sequences reach creditcard the trie has fanned out into
	// thousands of branches and the creditcard link carries one entry per
	// branch. Weighting creditcard moves it ahead of the name fan-out,
	// collapsing those entries into a handful (Impact 2, §5.1).
	const workload = "/site//person/creditcard[text='cc7']"

	configs := []struct {
		name string
		cfg  xseq.Config
	}{
		{"unweighted g_best", xseq.Config{}},
		{"w(creditcard)=1000", xseq.Config{Weights: map[string]float64{
			"site/people/person/creditcard": 1000,
		}}},
	}
	fmt.Printf("corpus: %d records; workload: %s ×%d\n\n", *n, workload, *repeats)
	fmt.Printf("%-20s %12s %10s %14s %14s\n", "sequencing", "index nodes", "hits", "disk accesses", "total time")
	for _, c := range configs {
		ix, err := xseq.Build(docs, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ix.EnablePagedIO(*pool); err != nil {
			log.Fatal(err)
		}
		var hits int
		var accesses int64
		start := time.Now()
		for r := 0; r < *repeats; r++ {
			ix.DropIOCache()
			ids, err := ix.Query(workload)
			if err != nil {
				log.Fatal(err)
			}
			hits = len(ids)
			accesses += ix.IO().DiskAccesses
		}
		elapsed := time.Since(start)
		fmt.Printf("%-20s %12d %10d %14d %14v\n", c.name, ix.Stats().IndexNodes, hits,
			accesses/int64(*repeats), elapsed.Round(time.Microsecond))
	}
	fmt.Println("\npromoting the selective element moves it ahead of the name fan-out in")
	fmt.Println("every sequence, so its link shrinks and the walk filters sooner (Impact 2, §5.1)")
}
