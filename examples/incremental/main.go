// Incremental: run the index as a long-lived service — start from a saved
// snapshot (or cold), ingest records as they arrive through a dynamic
// index, answer queries between inserts, compact, and persist a new
// snapshot. Demonstrates Save/Load, BuildDynamic, QueryExplain and
// FetchDocuments working together.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"xseq"
	"xseq/internal/datagen"
	"xseq/internal/xmltree"
)

func main() {
	n := flag.Int("n", 5000, "initial corpus size")
	batch := flag.Int("batch", 500, "records per incremental batch")
	batches := flag.Int("batches", 4, "number of incremental batches")
	flag.Parse()

	// Initial corpus: bibliography records.
	_, raw, err := datagen.DBLP(datagen.DBLPOptions{Seed: 99}, *n+*batch**batches)
	if err != nil {
		log.Fatal(err)
	}
	toDoc := func(d *xmltree.Document) *xseq.Document {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, d.Root); err != nil {
			log.Fatal(err)
		}
		doc, err := xseq.ParseDocumentString(d.ID, buf.String())
		if err != nil {
			log.Fatal(err)
		}
		return doc
	}
	initial := make([]*xseq.Document, *n)
	for i := 0; i < *n; i++ {
		initial[i] = toDoc(raw[i])
	}

	dyn, err := xseq.BuildDynamic(initial, xseq.Config{}, 2**batch)
	if err != nil {
		log.Fatal(err)
	}
	const workload = "//author[text='David']"
	fmt.Printf("service started with %d records; workload: %s\n\n", *n, workload)

	next := *n
	for b := 1; b <= *batches; b++ {
		start := time.Now()
		for i := 0; i < *batch; i++ {
			if err := dyn.Insert(toDoc(raw[next])); err != nil {
				log.Fatal(err)
			}
			next++
		}
		ingest := time.Since(start)
		start = time.Now()
		ids, err := dyn.Query(workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: +%d records in %v; query: %d hits in %v (pending %d)\n",
			b, *batch, ingest.Round(time.Millisecond),
			len(ids), time.Since(start).Round(time.Microsecond), dyn.PendingDocuments())
	}

	if err := dyn.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompacted: %d records total\n", dyn.NumDocuments())

	// Persist a queryable snapshot built from everything ingested so far.
	all := make([]*xseq.Document, next)
	for i := 0; i < next; i++ {
		all[i] = toDoc(raw[i])
	}
	snapshot, err := xseq.Build(all, xseq.Config{KeepDocuments: true})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes on the wire\n", buf.Len())

	restored, err := xseq.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	ids, ex, err := restored.QueryExplain(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored index answers %d hits (%d link probes, %d entries scanned)\n",
		len(ids), ex.LinkProbes, ex.EntriesScanned)

	docs, err := restored.FetchDocuments(ids[:min(3, len(ids))])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst matches:")
	for _, d := range docs {
		fmt.Printf("  doc %d: %s\n", d.ID(), d)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
