// Bibliography: index a DBLP-like corpus of publication records and run the
// paper's Table 8 queries, comparing constraint sequencing against a brute
// force corpus scan — the workload the paper's introduction motivates
// (large sets of small, homogeneous records).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"xseq"
	"xseq/internal/datagen"
	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func main() {
	n := flag.Int("n", 20000, "number of bibliography records")
	flag.Parse()

	_, raw, err := datagen.DBLP(datagen.DBLPOptions{Seed: 7}, *n)
	if err != nil {
		log.Fatal(err)
	}
	docs := make([]*xseq.Document, len(raw))
	for i, d := range raw {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, d.Root); err != nil {
			log.Fatal(err)
		}
		if docs[i], err = xseq.ParseDocumentString(d.ID, buf.String()); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	ix, err := xseq.Build(docs, xseq.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	fmt.Printf("indexed %d publication records in %v\n", s.Documents, time.Since(start).Round(time.Millisecond))
	fmt.Printf("index: %d trie nodes, %d path links, ~%.1f MB\n\n",
		s.IndexNodes, s.Links, float64(s.EstimatedDiskBytes)/1e6)

	queries := []struct{ name, text string }{
		{"Q1 (simple path)", datagen.DBLPQ1},
		{"Q2 (value predicate)", datagen.DBLPQ2},
		{"Q3 (wildcard)", datagen.DBLPQ3},
		{"Q4 (descendant)", datagen.DBLPQ4},
	}
	fmt.Printf("%-22s %12s %12s %9s\n", "query", "index", "full scan", "hits")
	for _, q := range queries {
		start := time.Now()
		ids, err := ix.Query(q.text)
		if err != nil {
			log.Fatal(err)
		}
		indexTime := time.Since(start)

		pat := query.MustParse(q.text)
		start = time.Now()
		scanHits := query.Eval(raw, pat)
		scanTime := time.Since(start)

		fmt.Printf("%-22s %12v %12v %9d\n", q.name,
			indexTime.Round(time.Microsecond), scanTime.Round(time.Microsecond), len(ids))
		_ = scanHits
	}
	fmt.Println("\n(the index answers designator-level matches; the scan verifies exact values —")
	fmt.Println(" counts can differ only under value-hash collisions, see Config.ValueSpace)")
}
