// Auction: index an XMark-like corpus (item / person / open_auction /
// closed_auction substructure records) and run the paper's Table 4 queries
// with simulated disk I/O accounting — the Table 7 experiment as a program.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"xseq"
	"xseq/internal/datagen"
	"xseq/internal/xmltree"
)

func main() {
	n := flag.Int("n", 20000, "number of auction records")
	pool := flag.Int("pool", 128, "buffer pool pages")
	flag.Parse()

	_, raw, err := datagen.XMark(datagen.XMarkOptions{IdenticalSiblings: true, Seed: 11}, *n)
	if err != nil {
		log.Fatal(err)
	}
	docs := make([]*xseq.Document, len(raw))
	for i, d := range raw {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, d.Root); err != nil {
			log.Fatal(err)
		}
		if docs[i], err = xseq.ParseDocumentString(d.ID, buf.String()); err != nil {
			log.Fatal(err)
		}
	}

	ix, err := xseq.Build(docs, xseq.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pages, err := ix.EnablePagedIO(*pool)
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	fmt.Printf("indexed %d auction records: %d trie nodes on %d simulated 4KiB pages\n\n",
		s.Documents, s.IndexNodes, pages)

	queries := []struct{ name, text string }{
		{"Q1", datagen.XMarkQ1},
		{"Q2", datagen.XMarkQ2},
		{"Q3", datagen.XMarkQ3},
	}
	fmt.Printf("%-4s %-70s %8s %8s %12s\n", "", "query", "hits", "pages", "time")
	for _, q := range queries {
		ix.DropIOCache() // cold cache per query, like Table 7
		start := time.Now()
		ids, err := ix.Query(q.text)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-4s %-70s %8d %8d %12v\n",
			q.name, q.text, len(ids), ix.IO().DiskAccesses, elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nwarm-cache rerun of Q2:")
	ix.ResetIO()
	start := time.Now()
	ids, err := ix.Query(datagen.XMarkQ2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("     %d hits, %d disk accesses, %v (buffer pool hit ratio %.0f%%)\n",
		len(ids), ix.IO().DiskAccesses, time.Since(start).Round(time.Microsecond),
		100*float64(ix.IO().Hits)/float64(ix.IO().Reads))
}
