// Package xseq is a sequence-based XML index: it answers tree-pattern
// (XPath-subset) queries over a corpus of XML records holistically by
// constraint subsequence matching, with no join operations, no per-document
// post-processing, and no false alarms — an implementation of Wang & Meng,
// "On the Sequencing of Tree Structures for XML Indexing", ICDE 2005.
//
// The pipeline: each record is transformed into a constraint sequence of
// path-encoded nodes, ordered by the performance-oriented strategy g_best
// (descending occurrence probability p'(C|root), derived from a schema
// inferred from the corpus and optionally re-weighted per element). The
// sequences go into a trie with interval labels and per-path horizontal
// links; queries run Algorithm 1's constraint subsequence matching, whose
// sibling-cover test preserves the equivalence between a structure match
// and a subsequence match (Theorems 2 and 3).
//
// Quick start:
//
//	doc, _ := xseq.ParseDocumentString(1, "<P><R><L>newyork</L></R></P>")
//	ix, _ := xseq.Build([]*xseq.Document{doc}, xseq.Config{})
//	ids, _ := ix.Query("/P/R/L[text='newyork']")
//
// See the examples/ directory for complete programs.
package xseq

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"sync/atomic"

	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// LimitError reports an input that exceeded a parse resource limit
// (ParseOptions.MaxDepth/MaxNodes/MaxInputBytes); detect it with errors.As.
type LimitError = xmltree.LimitError

// CorruptError reports a Save stream that failed validation on Load —
// truncated, bit-flipped, checksum mismatch, or structurally inconsistent;
// detect it with errors.As.
type CorruptError = index.CorruptError

// CompactionError reports a failed DynamicIndex compaction. The index keeps
// serving its pre-compaction state and retries automatically; detect the
// condition with errors.As.
type CompactionError = index.CompactionError

// PanicError wraps a panic that escaped the library internals through a
// public API call — always a bug in xseq, surfaced as an error (with the
// stack of the panicking goroutine) instead of crashing the caller.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("xseq: internal panic (please report): %v", e.Value)
}

// guard converts an escaped panic into a *PanicError. Every public entry
// point that executes library internals defers it, so a bug in the index
// machinery degrades into an error return rather than a process crash.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// Document is one indexable XML record.
type Document struct {
	id   int32
	root *xmltree.Node
}

// ParseOptions bounds document ingestion. The zero value applies the
// package defaults, which stop hostile inputs (deep-nesting bombs,
// unbounded streams) while being generous for benchmark corpora; -1
// disables the corresponding limit.
type ParseOptions struct {
	// KeepWhitespaceText keeps whitespace-only character data as value
	// leaves (default: dropped).
	KeepWhitespaceText bool
	// MaxDepth bounds element nesting depth (0: 1024, -1: unlimited).
	MaxDepth int
	// MaxNodes bounds the node count one document may produce
	// (0: ~16.7M, -1: unlimited).
	MaxNodes int
	// MaxInputBytes bounds the bytes read from the input
	// (0: 256 MiB, -1: unlimited).
	MaxInputBytes int64
}

// ParseDocument reads one XML document from r under the default resource
// limits.
func ParseDocument(id int32, r io.Reader) (*Document, error) {
	return ParseDocumentOptions(id, r, ParseOptions{})
}

// ParseDocumentOptions is ParseDocument with explicit options. An input
// exceeding a limit yields an error matching *LimitError via errors.As.
func ParseDocumentOptions(id int32, r io.Reader, opts ParseOptions) (doc *Document, err error) {
	defer guard(&err)
	root, err := xmltree.Parse(r, xmltree.ParseOptions{
		KeepWhitespaceText: opts.KeepWhitespaceText,
		MaxDepth:           opts.MaxDepth,
		MaxNodes:           opts.MaxNodes,
		MaxInputBytes:      opts.MaxInputBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Document{id: id, root: root}, nil
}

// ParseDocumentString is ParseDocument over a string.
func ParseDocumentString(id int32, src string) (*Document, error) {
	return ParseDocument(id, strings.NewReader(src))
}

// ID returns the document id.
func (d *Document) ID() int32 { return d.id }

// NumNodes reports the node count (elements, attributes, values).
func (d *Document) NumNodes() int { return d.root.Size() }

// WriteXML serializes the document as XML.
func (d *Document) WriteXML(w io.Writer) error { return xmltree.WriteXML(w, d.root) }

// String renders the tree in compact single-line form.
func (d *Document) String() string { return d.root.String() }

// Config tunes index construction.
type Config struct {
	// ValueSpace is the range of the attribute-value hash function
	// (<= 0: 1000, the paper's example). Larger spaces reduce bucket
	// collisions; Verify-mode queries are exact regardless.
	ValueSpace int
	// TextValues selects the paper's second value representation
	// (Section 2.1): values encode as character-designator sequences,
	// enabling exact value matching with no hash collisions and prefix
	// tests ("[text='bos*']") at the cost of longer sequences.
	TextValues bool
	// Weights maps slash-separated element name paths ("site/people/
	// person/age") to the query-frequency/selectivity weight w(C) of
	// Eq 6. Weighted elements sequence earlier, shrinking the search
	// space of queries that use them.
	Weights map[string]float64
	// BulkLoad sorts sequences before insertion (faster for static data).
	BulkLoad bool
	// KeepDocuments retains the corpus, enabling QueryVerified.
	KeepDocuments bool
	// InstantiationLimit caps wildcard expansion per query (<= 0: 4096).
	InstantiationLimit int
}

// Index is an immutable constraint-sequence index over a corpus.
type Index struct {
	ix   *index.Index
	sch  *schema.Schema
	pool *pager.Pool
}

// Build infers a schema from the corpus (probabilities by sampling, as in
// Section 5.2), applies Config.Weights, sequences every document with
// g_best, and builds the index. It is BuildContext with
// context.Background().
func Build(docs []*Document, cfg Config) (*Index, error) {
	return BuildContext(context.Background(), docs, cfg)
}

// BuildContext is Build honouring ctx: cancelling it aborts the build
// between documents, returning the context's error.
func BuildContext(ctx context.Context, docs []*Document, cfg Config) (ix0 *Index, err error) {
	defer guard(&err)
	if len(docs) == 0 {
		return nil, fmt.Errorf("xseq: empty corpus")
	}
	roots := make([]*xmltree.Node, len(docs))
	inner := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		if d == nil || d.root == nil {
			return nil, fmt.Errorf("xseq: nil document at position %d", i)
		}
		roots[i] = d.root
		inner[i] = &xmltree.Document{ID: d.id, Root: d.root}
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		return nil, fmt.Errorf("xseq: schema inference: %w", err)
	}
	for path, w := range cfg.Weights {
		names := strings.Split(strings.Trim(path, "/"), "/")
		if err := sch.SetWeightByNamePath(names, w); err != nil {
			return nil, fmt.Errorf("xseq: weight %q: %w", path, err)
		}
	}
	var enc *pathenc.Encoder
	if cfg.TextValues {
		enc = pathenc.NewTextEncoder()
	} else {
		enc = pathenc.NewEncoder(cfg.ValueSpace)
	}
	strategy := sequence.NewProbability(sch, enc)
	ix, err := index.BuildContext(ctx, inner, index.Options{
		Encoder:            enc,
		Strategy:           strategy,
		BulkLoad:           cfg.BulkLoad,
		KeepDocuments:      cfg.KeepDocuments,
		InstantiationLimit: cfg.InstantiationLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("xseq: build: %w", err)
	}
	return &Index{ix: ix, sch: sch}, nil
}

// Query answers an XPath-subset query (child and descendant steps,
// wildcards, branching predicates, value tests), returning matching
// document ids in ascending order. Value semantics are designator-level:
// two values in the same hash bucket are indistinguishable; use
// QueryVerified for exact matching. It is QueryContext with
// context.Background().
func (ix *Index) Query(q string) ([]int32, error) {
	return ix.QueryContext(context.Background(), q)
}

// QueryContext is Query honouring ctx: a cancelled or expired context
// aborts the match loops promptly (checked every few hundred candidate
// entries), returning the context's error — the escape hatch for runaway
// wildcard queries over large corpora.
func (ix *Index) QueryContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return ix.ix.QueryContext(ctx, pat)
}

// QueryVerified is Query with exact value semantics: every candidate is
// checked against its stored document. Requires Config.KeepDocuments.
func (ix *Index) QueryVerified(q string) ([]int32, error) {
	return ix.QueryVerifiedContext(context.Background(), q)
}

// QueryVerifiedContext is QueryVerified honouring ctx.
func (ix *Index) QueryVerifiedContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return ix.ix.QueryWithContext(ctx, pat, index.QueryOptions{Verify: true})
}

// QueryLimit is Query that stops after max distinct documents (max <= 0:
// unlimited). Useful for existence tests and first-page results. It is
// QueryLimitContext with context.Background().
func (ix *Index) QueryLimit(q string, max int) ([]int32, error) {
	return ix.QueryLimitContext(context.Background(), q, max)
}

// QueryLimitContext is QueryLimit honouring ctx: the deadline/cancellation
// semantics of QueryContext combined with the result cap — the entry point
// a serving layer uses for first-page queries under a request deadline.
func (ix *Index) QueryLimitContext(ctx context.Context, q string, max int) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return ix.ix.QueryWithContext(ctx, pat, index.QueryOptions{MaxResults: max})
}

// Explain reports the work a query performed.
type Explain struct {
	// Instances is the number of concrete instantiations (wildcard and
	// descendant expansion) of the pattern.
	Instances int
	// Orders is the number of query sequences tried (identical-sibling
	// order enumeration).
	Orders int
	// LinkProbes counts binary-search probes into path links.
	LinkProbes int64
	// EntriesScanned counts link entries visited as candidates.
	EntriesScanned int64
	// CoverChecks and CoverRejections count sibling-cover constraint
	// evaluations and the false alarms they eliminated.
	CoverChecks, CoverRejections int64
	// Results is the number of distinct documents returned.
	Results int
}

// QueryExplain is Query that also returns the work profile.
func (ix *Index) QueryExplain(q string) ([]int32, Explain, error) {
	return ix.QueryExplainContext(context.Background(), q)
}

// QueryExplainContext is QueryExplain honouring ctx.
func (ix *Index) QueryExplainContext(ctx context.Context, q string) (_ []int32, _ Explain, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, Explain{}, err
	}
	var st index.QueryStats
	ids, err := ix.ix.QueryWithContext(ctx, pat, index.QueryOptions{Stats: &st})
	if err != nil {
		return nil, Explain{}, err
	}
	return ids, Explain{
		Instances:       st.Instances,
		Orders:          st.Orders,
		LinkProbes:      st.LinkProbes,
		EntriesScanned:  st.EntriesScanned,
		CoverChecks:     st.CoverChecks,
		CoverRejections: st.CoverRejections,
		Results:         st.Results,
	}, nil
}

// Stats summarizes the index.
type Stats struct {
	// Documents is the corpus size.
	Documents int
	// IndexNodes is the trie node count (the paper's index-size metric).
	IndexNodes int
	// Links is the number of distinct paths (horizontal links).
	Links int
	// EstimatedDiskBytes applies the paper's 4n + 8N sizing formula.
	EstimatedDiskBytes int64
}

// Stats returns index statistics.
func (ix *Index) Stats() Stats {
	return Stats{
		Documents:          ix.ix.NumDocuments(),
		IndexNodes:         ix.ix.NumNodes(),
		Links:              ix.ix.NumLinks(),
		EstimatedDiskBytes: ix.ix.EstimatedDiskBytes(),
	}
}

// SchemaOutline renders the inferred schema as an annotated DTD-like
// outline with per-node occurrence probabilities — the statistics g_best
// sequences by. Empty for indexes reconstructed by Load (rebuild to
// inspect; the schema itself is preserved and used).
func (ix *Index) SchemaOutline() string {
	if ix.sch == nil {
		return ""
	}
	return ix.sch.String()
}

// FetchDocuments returns the stored documents for the given ids (in input
// order, skipping unknown ids). Requires Config.KeepDocuments.
func (ix *Index) FetchDocuments(ids []int32) ([]*Document, error) {
	stored := ix.ix.Documents()
	if stored == nil {
		return nil, fmt.Errorf("xseq: FetchDocuments requires Config.KeepDocuments")
	}
	byID := make(map[int32]*xmltree.Document, len(stored))
	for _, d := range stored {
		byID[d.ID] = d
	}
	out := make([]*Document, 0, len(ids))
	for _, id := range ids {
		if d, ok := byID[id]; ok {
			out = append(out, &Document{id: d.ID, root: d.Root})
		}
	}
	return out, nil
}

// Save serializes the index (designator tables, links, document lists,
// inferred schema, and — when built with KeepDocuments — the corpus) so it
// can be reloaded with Load without re-parsing or re-sequencing anything.
// The stream is the v2 format: magic header, version, gob payload, and a
// CRC-32 trailer that Load verifies.
func (ix *Index) Save(w io.Writer) (err error) {
	defer guard(&err)
	return ix.ix.Save(w)
}

// SaveFile is Save to a file, crash-safely: the index is written to a
// temporary file in the same directory, fsynced, and atomically renamed
// over path — a crash mid-save never leaves a torn index (a previous file
// at path survives intact).
func (ix *Index) SaveFile(path string) (err error) {
	defer guard(&err)
	return ix.ix.SaveFile(path)
}

// Load reconstructs an index written by Save. The loaded index answers
// queries identically to the original; it is immutable. Load accepts both
// current (v2, checksummed) and legacy v1 streams; corruption — truncation,
// bit flips, checksum or invariant failures — is reported as a
// *CorruptError, never a panic or a silently wrong index.
func Load(r io.Reader) (_ *Index, err error) {
	defer guard(&err)
	inner, err := index.Load(r)
	if err != nil {
		return nil, err
	}
	return &Index{ix: inner}, nil
}

// LoadFile is Load from a file written by SaveFile (or any Save stream on
// disk).
func LoadFile(path string) (_ *Index, err error) {
	defer guard(&err)
	inner, err := index.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{ix: inner}, nil
}

// Swapper publishes the live snapshot of an index and atomically swaps in
// replacements — the serving-side counterpart of SaveFile/LoadFile. Readers
// call Current once per query and keep using that snapshot for the whole
// operation; a concurrent swap never disturbs them. Safe for concurrent use.
type Swapper struct {
	p atomic.Pointer[Index]
}

// NewSwapper starts a Swapper serving ix (which may be nil: Current returns
// nil until the first successful swap).
func NewSwapper(ix *Index) *Swapper {
	s := &Swapper{}
	if ix != nil {
		s.p.Store(ix)
	}
	return s
}

// Current returns the snapshot being served right now.
func (s *Swapper) Current() *Index { return s.p.Load() }

// Swap publishes ix as the new serving snapshot and returns the previous
// one. A nil ix is a no-op that returns the current snapshot: a swap can
// never un-publish a working index.
func (s *Swapper) Swap(ix *Index) (prev *Index) {
	if ix == nil {
		return s.p.Load()
	}
	return s.p.Swap(ix)
}

// SwapFromFile loads path (a SaveFile snapshot) and, only on success, swaps
// it in. On any failure — missing file, *CorruptError, short read — the
// previous snapshot stays published and keeps serving; the error is
// returned alongside it. The returned index is whatever is current after
// the call: the fresh snapshot on success, the surviving old one on error.
func (s *Swapper) SwapFromFile(path string) (*Index, error) {
	ix, err := LoadFile(path)
	if err != nil {
		return s.p.Load(), err
	}
	s.p.Store(ix)
	return ix, nil
}

// DynamicIndex is an updatable index: documents can be inserted after
// construction. New documents buffer in a small delta index; queries span
// main + delta, and the delta folds into the main index on Compact (or
// automatically once it reaches the compaction threshold). Safe for
// concurrent use.
type DynamicIndex struct {
	d *index.Dynamic
}

// BuildDynamic builds an updatable index over an initial corpus (which may
// be empty). threshold is the delta size that triggers automatic
// compaction (<= 0: 1024).
func BuildDynamic(initial []*Document, cfg Config, threshold int) (_ *DynamicIndex, err error) {
	defer guard(&err)
	builder := func(ctx context.Context, inner []*xmltree.Document) (*index.Index, error) {
		wrapped := make([]*Document, len(inner))
		for i, d := range inner {
			wrapped[i] = &Document{id: d.ID, root: d.Root}
		}
		ix, err := BuildContext(ctx, wrapped, cfg)
		if err != nil {
			return nil, err
		}
		return ix.ix, nil
	}
	inner := make([]*xmltree.Document, len(initial))
	for i, d := range initial {
		if d == nil || d.root == nil {
			return nil, fmt.Errorf("xseq: nil document at position %d", i)
		}
		inner[i] = &xmltree.Document{ID: d.id, Root: d.root}
	}
	dyn, err := index.NewDynamic(builder, inner, threshold)
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{d: dyn}, nil
}

// Insert adds one document; ids must be unique across the index's life. It
// is InsertContext with context.Background().
func (d *DynamicIndex) Insert(doc *Document) error {
	return d.InsertContext(context.Background(), doc)
}

// InsertContext adds one document under ctx (which governs any automatic
// compaction the insert triggers). If that compaction fails — builder
// error, panic, or cancellation — the document is still inserted and
// queryable, the old main index keeps serving, and the failure is returned
// as a *CompactionError; compaction retries at the next threshold crossing.
func (d *DynamicIndex) InsertContext(ctx context.Context, doc *Document) (err error) {
	defer guard(&err)
	if doc == nil || doc.root == nil {
		return fmt.Errorf("xseq: nil document")
	}
	return d.d.InsertContext(ctx, &xmltree.Document{ID: doc.id, Root: doc.root})
}

// Query answers an XPath-subset query over main + delta. It is
// QueryContext with context.Background().
func (d *DynamicIndex) Query(q string) ([]int32, error) {
	return d.QueryContext(context.Background(), q)
}

// QueryContext is Query honouring ctx in both the lazy delta rebuild and
// the match loops.
func (d *DynamicIndex) QueryContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return d.d.QueryContext(ctx, pat)
}

// Compact folds buffered documents into the main index. On failure the
// index keeps serving its pre-compaction state and the error is a
// *CompactionError; see CompactContext.
func (d *DynamicIndex) Compact() error { return d.CompactContext(context.Background()) }

// CompactContext is Compact honouring ctx. Whatever goes wrong — builder
// error, panic, cancellation — the serving state is untouched: queries
// before and after a failed compaction answer identically.
func (d *DynamicIndex) CompactContext(ctx context.Context) (err error) {
	defer guard(&err)
	return d.d.CompactContext(ctx)
}

// LastCompactionError reports the most recent compaction failure, nil
// after a successful compaction (or if none ever failed).
func (d *DynamicIndex) LastCompactionError() error { return d.d.LastCompactionError() }

// NumDocuments reports the total corpus size including buffered documents.
func (d *DynamicIndex) NumDocuments() int { return d.d.NumDocuments() }

// PendingDocuments reports how many documents await compaction.
func (d *DynamicIndex) PendingDocuments() int { return d.d.PendingDocuments() }

// Health summarizes a DynamicIndex's serving condition for health
// endpoints. Degraded means the most recent compaction failed; the index is
// still fully serviceable (queries answer over the pre-compaction state
// plus the delta) and compaction retries automatically, so Degraded is a
// "needs attention", not an outage.
type Health struct {
	// Documents is the total corpus size including buffered documents.
	Documents int
	// Pending is the number of documents awaiting compaction.
	Pending int
	// Compactions counts successful compactions over the index's life.
	Compactions int
	// FailedCompactions counts compaction attempts that failed.
	FailedCompactions int
	// LastCompactionError is the most recent compaction failure rendered
	// as text, "" when the last compaction succeeded (or none ever ran).
	LastCompactionError string
	// Degraded reports LastCompactionError != "".
	Degraded bool
}

// Health returns the serving-condition summary.
func (d *DynamicIndex) Health() Health {
	h := Health{
		Documents:         d.d.NumDocuments(),
		Pending:           d.d.PendingDocuments(),
		Compactions:       d.d.Compactions(),
		FailedCompactions: d.d.FailedCompactions(),
	}
	if err := d.d.LastCompactionError(); err != nil {
		h.LastCompactionError = err.Error()
		h.Degraded = true
	}
	return h
}

// IOStats reports simulated disk I/O counters (all zero until EnablePagedIO).
type IOStats struct {
	Reads        int64
	Hits         int64
	DiskAccesses int64
}

// EnablePagedIO lays the index out on simulated 4 KiB pages behind an LRU
// buffer pool of poolPages pages (<= 0: 256) and starts counting disk
// accesses. It returns the on-disk page count.
func (ix *Index) EnablePagedIO(poolPages int) (int64, error) {
	ix.pool = pager.NewPool(poolPages)
	return ix.ix.AttachPager(ix.pool)
}

// DisablePagedIO stops I/O accounting.
func (ix *Index) DisablePagedIO() {
	ix.ix.DetachPager()
	ix.pool = nil
}

// IO returns the I/O counters accumulated since EnablePagedIO (or the last
// ResetIO).
func (ix *Index) IO() IOStats {
	s := ix.ix.PagerStats()
	return IOStats{Reads: s.Reads, Hits: s.Hits, DiskAccesses: s.Misses}
}

// ResetIO zeroes the I/O counters, keeping the buffer pool warm.
func (ix *Index) ResetIO() { ix.ix.ResetPagerStats() }

// DropIOCache empties the buffer pool (cold-cache measurements).
func (ix *Index) DropIOCache() { ix.ix.DropPagerCache() }
