// Package xseq is a sequence-based XML index: it answers tree-pattern
// (XPath-subset) queries over a corpus of XML records holistically by
// constraint subsequence matching, with no join operations, no per-document
// post-processing, and no false alarms — an implementation of Wang & Meng,
// "On the Sequencing of Tree Structures for XML Indexing", ICDE 2005.
//
// The pipeline: each record is transformed into a constraint sequence of
// path-encoded nodes, ordered by the performance-oriented strategy g_best
// (descending occurrence probability p'(C|root), derived from a schema
// inferred from the corpus and optionally re-weighted per element). The
// sequences go into a trie with interval labels and per-path horizontal
// links; queries run Algorithm 1's constraint subsequence matching, whose
// sibling-cover test preserves the equivalence between a structure match
// and a subsequence match (Theorems 2 and 3).
//
// Every storage organization — monolithic, hash-sharded, dynamic base+delta
// — implements one internal Engine contract, and Index dispatches every
// query, stats, and persistence call through exactly one engine value; an
// optional bounded result cache (Config.QueryCacheEntries) composes over
// any of them. Operations a layout cannot perform report ErrUnsupported.
//
// Quick start:
//
//	doc, _ := xseq.ParseDocumentString(1, "<P><R><L>newyork</L></R></P>")
//	ix, _ := xseq.Build([]*xseq.Document{doc}, xseq.Config{})
//	ids, _ := ix.Query("/P/R/L[text='newyork']")
//
// See the examples/ directory for complete programs.
package xseq

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"xseq/internal/engine"
	"xseq/internal/flat"
	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/qcache"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/shard"
	"xseq/internal/wal"
	"xseq/internal/xmltree"
)

// LimitError reports an input that exceeded a parse resource limit
// (ParseOptions.MaxDepth/MaxNodes/MaxInputBytes); detect it with errors.As.
type LimitError = xmltree.LimitError

// CorruptError reports a Save stream that failed validation on Load —
// truncated, bit-flipped, checksum mismatch, or structurally inconsistent;
// detect it with errors.As.
type CorruptError = index.CorruptError

// CompactionError reports a failed DynamicIndex compaction. The index keeps
// serving its pre-compaction state and retries automatically; detect the
// condition with errors.As.
type CompactionError = engine.CompactionError

// WALCorruptError reports a write-ahead log that failed validation: an
// uninterpretable file header, or (under Config.WALStrict) a torn or
// checksum-bad tail that lenient recovery would have truncated. Detect it
// with errors.As.
type WALCorruptError = wal.CorruptError

// ErrWALRotated reports a ReadWALFrames request for entries a checkpoint
// already rotated out of the log; the requester needs a snapshot, not the
// log. Detect it with errors.Is.
var ErrWALRotated = wal.ErrRotated

// ErrUnsupported reports an operation the index's storage layout cannot
// perform — paged I/O simulation on a sharded index, SchemaOutline where no
// schema was retained. Detect it with errors.Is; the returned error names
// the operation and the layout.
var ErrUnsupported = engine.ErrUnsupported

// PanicError wraps a panic that escaped the library internals through a
// public API call — always a bug in xseq, surfaced as an error (with the
// stack of the panicking goroutine) instead of crashing the caller.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("xseq: internal panic (please report): %v", e.Value)
}

// guard converts an escaped panic into a *PanicError. Every public entry
// point that executes library internals defers it, so a bug in the index
// machinery degrades into an error return rather than a process crash.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// Document is one indexable XML record.
type Document struct {
	id   int32
	root *xmltree.Node
}

// ParseOptions bounds document ingestion. The zero value applies the
// package defaults, which stop hostile inputs (deep-nesting bombs,
// unbounded streams) while being generous for benchmark corpora; -1
// disables the corresponding limit.
type ParseOptions struct {
	// KeepWhitespaceText keeps whitespace-only character data as value
	// leaves (default: dropped).
	KeepWhitespaceText bool
	// MaxDepth bounds element nesting depth (0: 1024, -1: unlimited).
	MaxDepth int
	// MaxNodes bounds the node count one document may produce
	// (0: ~16.7M, -1: unlimited).
	MaxNodes int
	// MaxInputBytes bounds the bytes read from the input
	// (0: 256 MiB, -1: unlimited).
	MaxInputBytes int64
}

// ParseDocument reads one XML document from r under the default resource
// limits.
func ParseDocument(id int32, r io.Reader) (*Document, error) {
	return ParseDocumentOptions(id, r, ParseOptions{})
}

// ParseDocumentOptions is ParseDocument with explicit options. An input
// exceeding a limit yields an error matching *LimitError via errors.As.
func ParseDocumentOptions(id int32, r io.Reader, opts ParseOptions) (doc *Document, err error) {
	defer guard(&err)
	root, err := xmltree.Parse(r, xmltree.ParseOptions{
		KeepWhitespaceText: opts.KeepWhitespaceText,
		MaxDepth:           opts.MaxDepth,
		MaxNodes:           opts.MaxNodes,
		MaxInputBytes:      opts.MaxInputBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Document{id: id, root: root}, nil
}

// ParseDocumentString is ParseDocument over a string.
func ParseDocumentString(id int32, src string) (*Document, error) {
	return ParseDocument(id, strings.NewReader(src))
}

// ID returns the document id.
func (d *Document) ID() int32 { return d.id }

// NumNodes reports the node count (elements, attributes, values).
func (d *Document) NumNodes() int { return d.root.Size() }

// WriteXML serializes the document as XML.
func (d *Document) WriteXML(w io.Writer) error { return xmltree.WriteXML(w, d.root) }

// String renders the tree in compact single-line form.
func (d *Document) String() string { return d.root.String() }

// Sequencing strategy names for Config.Strategy and the CLIs' -strategy
// flags. CanonicalStrategy resolves the aliases that appear in the paper
// and docs ("g_best", "constraint", "dfs", ...).
const (
	StrategyGBest        = sequence.NameGBest
	StrategyWeighted     = sequence.NameWeighted
	StrategyDepthFirst   = sequence.NameDepthFirst
	StrategyBreadthFirst = sequence.NameBreadthFirst
)

// Strategies lists the canonical strategy names Config.Strategy accepts.
func Strategies() []string { return sequence.Names() }

// CanonicalStrategy resolves a strategy name or alias to its canonical
// form, erroring on unknown names — the check the CLIs run up front so a
// typo is a usage error (exit 2), not a build failure.
func CanonicalStrategy(name string) (string, error) { return sequence.CanonicalName(name) }

// Config tunes index construction.
type Config struct {
	// ValueSpace is the range of the attribute-value hash function
	// (<= 0: 1000, the paper's example). Larger spaces reduce bucket
	// collisions; Verify-mode queries are exact regardless.
	ValueSpace int
	// TextValues selects the paper's second value representation
	// (Section 2.1): values encode as character-designator sequences,
	// enabling exact value matching with no hash collisions and prefix
	// tests ("[text='bos*']") at the cost of longer sequences.
	TextValues bool
	// Weights maps slash-separated element name paths ("site/people/
	// person/age") to the query-frequency/selectivity weight w(C) of
	// Eq 6. Weighted elements sequence earlier, shrinking the search
	// space of queries that use them.
	Weights map[string]float64
	// Strategy names the sequencing strategy: "" or StrategyGBest (the
	// paper's probability-based g_best, the default), StrategyWeighted
	// (g_best with Weights applied as Eq 6 query-frequency weights;
	// unknown weight paths are skipped — online-derived vectors
	// legitimately mention paths the corpus lacks), or the positional
	// baselines StrategyDepthFirst / StrategyBreadthFirst (Section 6
	// comparison points: they build and report stats but cannot answer
	// index queries, which need priority-ordered sequencing, and cannot
	// be persisted — snapshots reconstruct priorities from the schema).
	Strategy string
	// BulkLoad sorts sequences before insertion (faster for static data).
	BulkLoad bool
	// KeepDocuments retains the corpus, enabling QueryVerified.
	KeepDocuments bool
	// InstantiationLimit caps wildcard expansion per query (<= 0: 4096).
	InstantiationLimit int
	// Shards hash-partitions the corpus by document id into this many
	// independently built and queried sub-indexes (<= 1: one monolithic
	// index). Builds parallelize across shards on BuildWorkers workers;
	// queries fan out to every shard concurrently and merge, returning
	// exactly the ids (same set, same ascending order) the monolithic index
	// returns. Each shard infers its own schema from its partition, so
	// SchemaOutline reports ErrUnsupported for sharded indexes, as does
	// paged I/O simulation. BuildDynamic honours Shards too: compaction
	// rebuilds run through the sharded build path.
	Shards int
	// BuildWorkers bounds how many shards build concurrently
	// (<= 0: runtime.GOMAXPROCS(0)). Ignored when Shards <= 1.
	BuildWorkers int
	// QueryCacheEntries bounds a per-index LRU cache of query results
	// (0: no cache). Hot repeated patterns are answered from the cache;
	// entries are keyed by the canonical pattern string and the engine's
	// snapshot generation, so a DynamicIndex insert or compaction
	// invalidates them exactly. Cache counters surface in Stats.QueryCache.
	QueryCacheEntries int
	// WALPath makes BuildDynamic durable: every insert is appended (framed
	// and checksummed) to the write-ahead log at this path and fsynced
	// before the insert is acknowledged, and on startup the log is replayed
	// so a crash — kill -9 included — loses no acknowledged insert. Only
	// BuildDynamic honours it; "" disables the log.
	WALPath string
	// WALStrict makes startup fail with a *WALCorruptError on a torn or
	// checksum-bad log tail instead of truncating the log at the tear (the
	// default, which is what a crash mid-append legitimately leaves behind).
	WALStrict bool
	// WALSyncWindow batches WAL fsyncs (group commit): an insert is
	// acknowledged at the next window boundary, so under concurrent load
	// one fsync covers a whole batch. 0 fsyncs per insert (still sharing
	// fsyncs between concurrent inserters).
	WALSyncWindow time.Duration
	// Layout selects the storage organization. "" (with Shards) picks the
	// heap layouts as before; LayoutFlat ("flat") converts the built index
	// to the flat single-file format and serves it query-in-place — the
	// layout Load gives a SaveFlat snapshot. Flat is a single-partition
	// layout: combining it with Shards > 1 is a configuration error.
	Layout string
}

// Index is an immutable constraint-sequence index over a corpus. The
// storage organization underneath — one monolithic index, or a
// hash-partitioned set of shards built with Config.Shards > 1 — is hidden
// behind a single engine value, optionally wrapped in a query result cache;
// the query API is identical either way.
type Index struct {
	eng  engine.Engine // single dispatch point (may be a *qcache.Cache)
	sch  *schema.Schema
	pool *pager.Pool
}

// Build infers a schema from the corpus (probabilities by sampling, as in
// Section 5.2), applies Config.Weights, sequences every document with
// g_best, and builds the index. It is BuildContext with
// context.Background().
func Build(docs []*Document, cfg Config) (*Index, error) {
	return BuildContext(context.Background(), docs, cfg)
}

// BuildContext is Build honouring ctx: cancelling it aborts the build
// between documents (and, for sharded builds, cancels every in-flight shard
// build), returning the context's error.
func BuildContext(ctx context.Context, docs []*Document, cfg Config) (ix0 *Index, err error) {
	defer guard(&err)
	if len(docs) == 0 {
		return nil, fmt.Errorf("xseq: empty corpus")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("xseq: negative shard count %d", cfg.Shards)
	}
	if cfg.BuildWorkers < 0 {
		return nil, fmt.Errorf("xseq: negative build worker count %d", cfg.BuildWorkers)
	}
	switch cfg.Layout {
	case "", LayoutFlat:
	default:
		return nil, fmt.Errorf("xseq: unknown layout %q (want \"\" or %q)", cfg.Layout, LayoutFlat)
	}
	if cfg.Layout == LayoutFlat && cfg.Shards > 1 {
		return nil, fmt.Errorf("xseq: Layout %q is a single-partition layout; it cannot combine with Shards %d", LayoutFlat, cfg.Shards)
	}
	strategyName, err := sequence.CanonicalName(cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("xseq: %w", err)
	}
	if cfg.Layout == LayoutFlat && (strategyName == StrategyDepthFirst || strategyName == StrategyBreadthFirst) {
		return nil, fmt.Errorf("xseq: strategy %q cannot build the flat layout (flat snapshots reconstruct g_best priorities from the schema, which would not match the positional data order)", strategyName)
	}
	inner := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		if d == nil || d.root == nil {
			return nil, fmt.Errorf("xseq: nil document at position %d", i)
		}
		inner[i] = &xmltree.Document{ID: d.id, Root: d.root}
	}
	out := &Index{}
	if cfg.Shards > 1 {
		sh, err := shard.BuildContext(ctx, inner, func(ctx context.Context, part []*xmltree.Document) (*index.Index, error) {
			ix, _, err := buildPartition(ctx, part, cfg, true)
			return ix, err
		}, shard.Options{Shards: cfg.Shards, Workers: cfg.BuildWorkers})
		if err != nil {
			return nil, fmt.Errorf("xseq: build: %w", err)
		}
		out.eng = sh
	} else {
		ix, sch, err := buildPartition(ctx, inner, cfg, false)
		if err != nil {
			return nil, fmt.Errorf("xseq: build: %w", err)
		}
		out.eng, out.sch = ix, sch
		if cfg.Layout == LayoutFlat {
			// Convert in memory: lay the built index out in the flat format
			// and serve the bytes query-in-place, exactly as a loaded
			// SaveFlat snapshot would be.
			ex, err := ix.Export()
			if err != nil {
				return nil, fmt.Errorf("xseq: build flat: %w", err)
			}
			var buf bytes.Buffer
			if err := flat.Write(&buf, ex); err != nil {
				return nil, fmt.Errorf("xseq: build flat: %w", err)
			}
			f, err := flat.OpenBytes(buf.Bytes(), flat.Options{})
			if err != nil {
				return nil, fmt.Errorf("xseq: build flat: %w", err)
			}
			out.eng = f
		}
	}
	if cfg.QueryCacheEntries > 0 {
		out.EnableQueryCache(cfg.QueryCacheEntries)
	}
	return out, nil
}

// buildPartition infers a schema over one corpus partition (the whole
// corpus for a monolithic build, one shard's slice otherwise), applies the
// weights, and builds the index. Sharded builds skip weight paths the
// partition's schema never saw — a rare path can hash its every document
// into a few shards, and its absence elsewhere must not fail the build.
func buildPartition(ctx context.Context, inner []*xmltree.Document, cfg Config, skipUnknownWeights bool) (*index.Index, *schema.Schema, error) {
	roots := make([]*xmltree.Node, len(inner))
	for i, d := range inner {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		return nil, nil, fmt.Errorf("schema inference: %w", err)
	}
	var enc *pathenc.Encoder
	if cfg.TextValues {
		enc = pathenc.NewTextEncoder()
	} else {
		enc = pathenc.NewEncoder(cfg.ValueSpace)
	}
	// The strategy constructor applies cfg.Weights to the schema before any
	// Model is built (Models memoize priorities); the weighted strategy
	// always skips unknown weight paths, gbest only for sharded partitions.
	strategy, err := sequence.NewByName(cfg.Strategy, sch, enc, cfg.Weights, skipUnknownWeights)
	if err != nil {
		return nil, nil, err
	}
	ix, err := index.BuildContext(ctx, inner, index.Options{
		Encoder:            enc,
		Strategy:           strategy,
		BulkLoad:           cfg.BulkLoad,
		KeepDocuments:      cfg.KeepDocuments,
		InstantiationLimit: cfg.InstantiationLimit,
	})
	if err != nil {
		return nil, nil, err
	}
	return ix, sch, nil
}

// EnableQueryCache wraps the index's engine in a bounded LRU result cache
// of at most entries results (<= 0: a default of 1024), replacing any cache
// already installed (its counters reset). Build installs one automatically
// when Config.QueryCacheEntries > 0; call this after Load/LoadFile, before
// the index starts serving — it is not safe to call concurrently with
// queries.
func (ix *Index) EnableQueryCache(entries int) {
	ix.eng = qcache.New(ix.baseEngine(), entries)
}

// baseEngine unwraps the result cache, if one is installed.
func (ix *Index) baseEngine() engine.Engine {
	if c, ok := ix.eng.(*qcache.Cache); ok {
		return c.Inner()
	}
	return ix.eng
}

// Query answers an XPath-subset query (child and descendant steps,
// wildcards, branching predicates, value tests), returning matching
// document ids in ascending order. Value semantics are designator-level:
// two values in the same hash bucket are indistinguishable; use
// QueryVerified for exact matching. It is QueryContext with
// context.Background().
func (ix *Index) Query(q string) ([]int32, error) {
	return ix.QueryContext(context.Background(), q)
}

// QueryContext is Query honouring ctx: a cancelled or expired context
// aborts the match loops promptly (checked every few hundred candidate
// entries), returning the context's error — the escape hatch for runaway
// wildcard queries over large corpora.
func (ix *Index) QueryContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return ix.eng.QueryWithContext(ctx, pat, engine.QueryOptions{})
}

// QueryVerified is Query with exact value semantics: every candidate is
// checked against its stored document. Requires Config.KeepDocuments.
func (ix *Index) QueryVerified(q string) ([]int32, error) {
	return ix.QueryVerifiedContext(context.Background(), q)
}

// QueryVerifiedContext is QueryVerified honouring ctx.
func (ix *Index) QueryVerifiedContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return ix.eng.QueryWithContext(ctx, pat, engine.QueryOptions{Verify: true})
}

// QueryLimit is Query that stops after max distinct documents (max <= 0:
// unlimited). Useful for existence tests and first-page results. It is
// QueryLimitContext with context.Background().
func (ix *Index) QueryLimit(q string, max int) ([]int32, error) {
	return ix.QueryLimitContext(context.Background(), q, max)
}

// QueryLimitContext is QueryLimit honouring ctx: the deadline/cancellation
// semantics of QueryContext combined with the result cap — the entry point
// a serving layer uses for first-page queries under a request deadline. On
// a sharded index the fan-out cancels the remaining shards as soon as max
// hits have accumulated across shards.
func (ix *Index) QueryLimitContext(ctx context.Context, q string, max int) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return ix.eng.QueryWithContext(ctx, pat, engine.QueryOptions{MaxResults: max})
}

// Explain reports the work a query performed.
type Explain struct {
	// Instances is the number of concrete instantiations (wildcard and
	// descendant expansion) of the pattern.
	Instances int
	// Orders is the number of query sequences tried (identical-sibling
	// order enumeration).
	Orders int
	// LinkProbes counts binary-search probes into path links.
	LinkProbes int64
	// EntriesScanned counts link entries visited as candidates.
	EntriesScanned int64
	// CoverChecks and CoverRejections count sibling-cover constraint
	// evaluations and the false alarms they eliminated.
	CoverChecks, CoverRejections int64
	// Results is the number of distinct documents returned.
	Results int
}

// QueryExplain is Query that also returns the work profile.
func (ix *Index) QueryExplain(q string) ([]int32, Explain, error) {
	return ix.QueryExplainContext(context.Background(), q)
}

// QueryExplainContext is QueryExplain honouring ctx. Explain queries always
// execute (never served from the result cache): the point is to measure the
// work.
func (ix *Index) QueryExplainContext(ctx context.Context, q string) (_ []int32, _ Explain, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, Explain{}, err
	}
	var st engine.QueryStats
	ids, err := ix.eng.QueryWithContext(ctx, pat, engine.QueryOptions{Stats: &st})
	if err != nil {
		return nil, Explain{}, err
	}
	return ids, Explain{
		Instances:       st.Instances,
		Orders:          st.Orders,
		LinkProbes:      st.LinkProbes,
		EntriesScanned:  st.EntriesScanned,
		CoverChecks:     st.CoverChecks,
		CoverRejections: st.CoverRejections,
		Results:         st.Results,
	}, nil
}

// Stats summarizes the index.
type Stats struct {
	// Documents is the corpus size.
	Documents int
	// IndexNodes is the trie node count (the paper's index-size metric),
	// summed across shards when sharded.
	IndexNodes int
	// Links is the number of distinct paths (horizontal links), summed
	// across shards when sharded (each shard owns a private path table).
	Links int
	// EstimatedDiskBytes applies the paper's 4n + 8N sizing formula.
	EstimatedDiskBytes int64
	// Shards is the partition count, 0 for a monolithic index.
	Shards int
	// PerShard reports each shard's shape, nil for a monolithic index.
	// Empty shards (fewer documents than shards) report zeros.
	PerShard []ShardStats
	// QueryCache reports the result cache's counters, nil when no cache is
	// installed.
	QueryCache *QueryCacheStats
	// Flat reports the flat layout's real storage figures (mapped vs
	// resident bytes, page-touch counters), nil for heap layouts.
	Flat *FlatStats
}

// ShardStats is one shard's slice of a sharded index's Stats.
type ShardStats struct {
	// Documents is the shard's partition size.
	Documents int
	// IndexNodes is the shard's trie node count.
	IndexNodes int
	// Links is the shard's distinct path count.
	Links int
}

// QueryCacheStats reports the query result cache's counters.
type QueryCacheStats struct {
	// Capacity is the configured entry bound.
	Capacity int
	// Entries is the current number of cached results.
	Entries int
	// Hits counts queries served from the cache.
	Hits int64
	// Misses counts queries that executed (including uncacheable variants:
	// explain and limited queries always execute).
	Misses int64
	// Evictions counts entries dropped for capacity or staleness.
	Evictions int64
}

// cacheStats converts a qcache snapshot, nil when eng carries no cache.
func cacheStats(eng engine.Engine) *QueryCacheStats {
	c, ok := eng.(*qcache.Cache)
	if !ok {
		return nil
	}
	s := c.Stats()
	return &QueryCacheStats{
		Capacity:  s.Capacity,
		Entries:   s.Entries,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
	}
}

// Stats returns index statistics.
func (ix *Index) Stats() Stats {
	st := Stats{
		Documents:          ix.eng.NumDocuments(),
		IndexNodes:         ix.eng.NumNodes(),
		Links:              ix.eng.NumLinks(),
		EstimatedDiskBytes: ix.eng.EstimatedDiskBytes(),
		QueryCache:         cacheStats(ix.eng),
		Flat:               flatStats(ix.baseEngine()),
	}
	if per := ix.eng.Shards(); per != nil {
		st.Shards = len(per)
		st.PerShard = make([]ShardStats, len(per))
		for i, s := range per {
			st.PerShard[i] = ShardStats{Documents: s.Documents, IndexNodes: s.Nodes, Links: s.Links}
		}
	}
	return st
}

// SchemaOutline renders the inferred schema as an annotated DTD-like
// outline with per-node occurrence probabilities — the statistics g_best
// sequences by. The schema is only retained by a monolithic Build: indexes
// reconstructed by Load (rebuild to inspect; the schema itself is preserved
// and used) and sharded indexes (each shard infers a private schema from
// its partition) return an error wrapping ErrUnsupported.
func (ix *Index) SchemaOutline() (string, error) {
	if ix.sch == nil {
		if ix.eng.Shards() != nil {
			return "", fmt.Errorf("xseq: schema outline on a sharded index (each shard infers a private schema): %w", ErrUnsupported)
		}
		return "", fmt.Errorf("xseq: schema outline on a loaded snapshot (outline is not persisted; rebuild to inspect): %w", ErrUnsupported)
	}
	return ix.sch.String(), nil
}

// FetchDocuments returns the stored documents for the given ids (in input
// order, skipping unknown ids). Requires Config.KeepDocuments.
func (ix *Index) FetchDocuments(ids []int32) ([]*Document, error) {
	stored := ix.eng.Documents()
	if stored == nil {
		return nil, fmt.Errorf("xseq: FetchDocuments requires Config.KeepDocuments")
	}
	byID := make(map[int32]*xmltree.Document, len(stored))
	for _, d := range stored {
		byID[d.ID] = d
	}
	out := make([]*Document, 0, len(ids))
	for _, id := range ids {
		if d, ok := byID[id]; ok {
			out = append(out, &Document{id: d.ID, root: d.Root})
		}
	}
	return out, nil
}

// StoredDocuments returns every stored document, ids ascending by input
// order — the restart seed for BuildDynamic after loading a Checkpoint
// snapshot. Requires Config.KeepDocuments at build time (snapshots persist
// the corpus only when it was kept).
func (ix *Index) StoredDocuments() ([]*Document, error) {
	stored := ix.eng.Documents()
	if stored == nil {
		return nil, fmt.Errorf("xseq: StoredDocuments requires Config.KeepDocuments")
	}
	out := make([]*Document, len(stored))
	for i, d := range stored {
		out[i] = &Document{id: d.ID, root: d.Root}
	}
	return out, nil
}

// RebuildWithWeights re-sequences the retained corpus under the weighted
// g_best strategy (Eq 6) with the given weight vector and returns a fresh
// index — the adaptive-resequencing rebuild. The new index answers every
// query with byte-identical results (weights change sequencing *order*,
// never answers); what changes is the trie shape: frequently-queried paths
// sequence earlier, sharing longer prefixes and shortening their match
// ranges. The rebuild preserves the index's value encoding, shard count,
// and layout; unknown weight paths are skipped (an online-derived vector
// may name paths this corpus lacks). Requires Config.KeepDocuments at
// build time. The receiving index is untouched and keeps serving — swap
// the result in (e.g. via a Swapper) once it is ready.
func (ix *Index) RebuildWithWeights(ctx context.Context, weights map[string]float64) (_ *Index, err error) {
	defer guard(&err)
	docs, err := ix.StoredDocuments()
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Strategy:      StrategyWeighted,
		Weights:       weights,
		KeepDocuments: true,
		BulkLoad:      true,
	}
	switch e := ix.baseEngine().(type) {
	case *index.Index:
		cfg.ValueSpace, cfg.TextValues = e.Encoder().ValueSpace(), e.Encoder().TextValues()
	case *shard.Index:
		enc := e.Shard(0).Encoder()
		cfg.ValueSpace, cfg.TextValues = enc.ValueSpace(), enc.TextValues()
		cfg.Shards = e.NumShards()
	case *flat.Index:
		cfg.ValueSpace, cfg.TextValues = e.Encoder().ValueSpace(), e.Encoder().TextValues()
		cfg.Layout = LayoutFlat
	default:
		return nil, fmt.Errorf("xseq: resequencing rebuild on layout %q: %w", ix.Layout(), ErrUnsupported)
	}
	out, err := BuildContext(ctx, docs, cfg)
	if err != nil {
		return nil, fmt.Errorf("xseq: resequencing rebuild: %w", err)
	}
	return out, nil
}

// persistable rejects saving indexes whose sequencing order a snapshot
// cannot reconstruct: Load rebuilds query priorities from the persisted
// schema (g_best over node probabilities and weights), so only gbest- and
// weighted-sequenced indexes round-trip. A positional baseline
// (depth-first / breadth-first) would reload with mismatched priorities
// and silently answer queries wrongly — refuse instead.
func (ix *Index) persistable() error {
	var name string
	switch e := ix.baseEngine().(type) {
	case *index.Index:
		if s := e.Strategy(); s != nil {
			name = s.Name()
		}
	case *shard.Index:
		if e.NumShards() > 0 {
			if s := e.Shard(0).Strategy(); s != nil {
				name = s.Name()
			}
		}
	}
	switch name {
	case "", "constraint", StrategyWeighted:
		return nil
	}
	return fmt.Errorf("xseq: a %s-sequenced index cannot be persisted (snapshots reconstruct g_best priorities from the schema): %w", name, ErrUnsupported)
}

// Save serializes the index (designator tables, links, document lists,
// inferred schema, and — when built with KeepDocuments — the corpus) so it
// can be reloaded with Load without re-parsing or re-sequencing anything.
// A monolithic index writes the v2 format (magic header, version, gob
// payload, CRC-32 trailer); a sharded index writes the sharded container: a
// checksummed manifest (shard count, partition seed, per-shard length and
// CRC) followed by one v2 stream per shard.
func (ix *Index) Save(w io.Writer) (err error) {
	defer guard(&err)
	if err := ix.persistable(); err != nil {
		return err
	}
	return ix.eng.Save(w)
}

// SaveFile is Save to a file, crash-safely: the index is written to a
// temporary file in the same directory, fsynced, and atomically renamed
// over path — a crash mid-save never leaves a torn index (a previous file
// at path survives intact).
func (ix *Index) SaveFile(path string) (err error) {
	defer guard(&err)
	if err := ix.persistable(); err != nil {
		return err
	}
	return ix.eng.SaveFile(path)
}

// Load reconstructs an index written by Save, sniffing the stream's magic
// bytes to accept monolithic (current v2, checksummed, and legacy v1) and
// sharded streams alike. The loaded index answers queries identically to
// the original; it is immutable. Corruption — truncation, bit flips,
// checksum or invariant failures, a damaged shard — is reported as a
// *CorruptError, never a panic or a silently wrong index; for sharded
// streams the error names the damaged shard.
func Load(r io.Reader) (_ *Index, err error) {
	defer guard(&err)
	var hdr [8]byte
	n, rerr := io.ReadFull(r, hdr[:])
	if rerr != nil && rerr != io.ErrUnexpectedEOF && rerr != io.EOF {
		return nil, &CorruptError{Reason: "unreadable stream", Err: rerr}
	}
	replay := io.MultiReader(bytes.NewReader(hdr[:n]), r)
	if shard.IsShardedHeader(hdr[:n]) {
		sh, err := shard.Load(replay)
		if err != nil {
			return nil, err
		}
		return &Index{eng: sh}, nil
	}
	if flat.IsFlatHeader(hdr[:n]) {
		f, err := flat.Open(replay, flat.Options{})
		if err != nil {
			return nil, err
		}
		return &Index{eng: f}, nil
	}
	inner, err := index.Load(replay)
	if err != nil {
		return nil, err
	}
	return &Index{eng: inner}, nil
}

// LoadFile is Load from a file written by SaveFile (or any Save stream on
// disk). Sharded snapshots load their shards in parallel on a
// GOMAXPROCS-bounded worker pool. A flat snapshot (SaveFlatFile) is
// memory-mapped and opened in O(dictionary) time — the corpus-sized
// sections are addressed, not decoded, so opening is independent of corpus
// size and the file may exceed RAM; call Close when done with it.
func LoadFile(path string) (_ *Index, err error) {
	defer guard(&err)
	kind, err := sniffFile(path)
	if err != nil {
		return nil, err
	}
	switch kind {
	case snapSharded:
		sh, err := shard.LoadFile(path)
		if err != nil {
			return nil, err
		}
		return &Index{eng: sh}, nil
	case snapFlat:
		f, err := flat.OpenFile(path, flat.Options{})
		if err != nil {
			return nil, err
		}
		return &Index{eng: f}, nil
	}
	inner, err := index.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{eng: inner}, nil
}

type snapKind int

const (
	snapMonolithic snapKind = iota
	snapSharded
	snapFlat
)

// sniffFile reads path's first bytes and classifies the snapshot format.
func sniffFile(path string) (snapKind, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapMonolithic, fmt.Errorf("xseq: load %s: %w", path, err)
	}
	defer f.Close()
	var hdr [8]byte
	n, _ := io.ReadFull(f, hdr[:])
	switch {
	case shard.IsShardedHeader(hdr[:n]):
		return snapSharded, nil
	case flat.IsFlatHeader(hdr[:n]):
		return snapFlat, nil
	default:
		return snapMonolithic, nil
	}
}

// Swapper publishes the live snapshot of an index and atomically swaps in
// replacements — the serving-side counterpart of SaveFile/LoadFile. Readers
// call Current once per query and keep using that snapshot for the whole
// operation; a concurrent swap never disturbs them. Safe for concurrent use.
//
// Result caches are per-Index, so a swap implicitly invalidates: the fresh
// snapshot starts with a fresh (empty) cache, and readers still holding the
// old snapshot keep hitting the old cache, whose entries are correct for
// that snapshot's corpus.
type Swapper struct {
	p atomic.Pointer[Index]
}

// NewSwapper starts a Swapper serving ix (which may be nil: Current returns
// nil until the first successful swap).
func NewSwapper(ix *Index) *Swapper {
	s := &Swapper{}
	if ix != nil {
		s.p.Store(ix)
	}
	return s
}

// Current returns the snapshot being served right now.
func (s *Swapper) Current() *Index { return s.p.Load() }

// Swap publishes ix as the new serving snapshot and returns the previous
// one. A nil ix is a no-op that returns the current snapshot: a swap can
// never un-publish a working index.
func (s *Swapper) Swap(ix *Index) (prev *Index) {
	if ix == nil {
		return s.p.Load()
	}
	return s.p.Swap(ix)
}

// SwapFromFile loads path (a SaveFile snapshot) and, only on success, swaps
// it in. On any failure — missing file, *CorruptError, short read — the
// previous snapshot stays published and keeps serving; the error is
// returned alongside it. The returned index is whatever is current after
// the call: the fresh snapshot on success, the surviving old one on error.
//
// Flat snapshots get the full integrity sweep (VerifyIntegrity) before
// being published: their bulk sections are not checksummed by the O(1)
// open, and a serving swap is exactly the moment to pay for the scan —
// damage keeps the old snapshot serving instead of surfacing mid-query.
func (s *Swapper) SwapFromFile(path string) (*Index, error) {
	ix, err := LoadFile(path)
	if err != nil {
		return s.p.Load(), err
	}
	if err := ix.VerifyIntegrity(); err != nil {
		ix.Close()
		return s.p.Load(), err
	}
	s.p.Store(ix)
	return ix, nil
}

// DynamicIndex is an updatable index: documents can be inserted after
// construction. New documents buffer in a small delta index; queries span
// main + delta, and the delta folds into the main index on Compact (or
// automatically once it reaches the compaction threshold). Safe for
// concurrent use.
type DynamicIndex struct {
	d      *engine.Dynamic
	eng    engine.Engine // d, possibly wrapped in a result cache
	w      *wal.WAL      // nil without Config.WALPath
	replay wal.ReplayStats
	// weights is the adaptive-resequencing vector the builder closure reads
	// at build time: once Resequence installs it, every rebuild — the
	// forced one, lazy delta builds, and future compactions — sequences
	// under the weighted strategy, keeping main and delta order-compatible.
	weights atomic.Pointer[map[string]float64]
}

// BuildDynamic builds an updatable index over an initial corpus (which may
// be empty). threshold is the delta size that triggers automatic compaction
// (<= 0: 1024). Config.Shards is honoured: with Shards > 1 every rebuild —
// the initial build, lazy delta builds, and compactions — runs through the
// sharded build path, so compaction parallelizes across BuildWorkers
// workers and queries fan out across shards; results are identical to the
// monolithic dynamic index either way. Config.QueryCacheEntries composes a
// result cache over the whole dynamic engine, invalidated exactly on every
// insert and compaction.
//
// Config.WALPath arms durable ingestion: the log at that path is replayed
// on top of the initial corpus (entries whose document id the corpus
// already holds are skipped — the overlap a crash between checkpointing
// and log rotation leaves), then every insert is logged and fsynced before
// it is acknowledged. Close the index when done so the final group commit
// lands. The restart recipe after a Checkpoint: load the snapshot (built
// with Config.KeepDocuments), pass its StoredDocuments as the initial
// corpus, and keep the same WALPath — replay supplies everything newer
// than the snapshot.
func BuildDynamic(initial []*Document, cfg Config, threshold int) (_ *DynamicIndex, err error) {
	defer guard(&err)
	subCfg := cfg
	// The cache layers over the dynamic engine as a whole, not inside the
	// sub-engines it rebuilds.
	subCfg.QueryCacheEntries = 0
	di := &DynamicIndex{}
	builder := func(ctx context.Context, inner []*xmltree.Document) (engine.Engine, error) {
		wrapped := make([]*Document, len(inner))
		for i, d := range inner {
			wrapped[i] = &Document{id: d.ID, root: d.Root}
		}
		bcfg := subCfg
		if w := di.weights.Load(); w != nil {
			bcfg.Strategy, bcfg.Weights = StrategyWeighted, *w
		}
		ix, err := BuildContext(ctx, wrapped, bcfg)
		if err != nil {
			return nil, err
		}
		return ix.eng, nil
	}
	inner := make([]*xmltree.Document, len(initial))
	for i, d := range initial {
		if d == nil || d.root == nil {
			return nil, fmt.Errorf("xseq: nil document at position %d", i)
		}
		inner[i] = &xmltree.Document{ID: d.id, Root: d.root}
	}
	dyn, err := engine.NewDynamic(builder, inner, threshold)
	if err != nil {
		return nil, err
	}
	di.d, di.eng = dyn, dyn
	if cfg.WALPath != "" {
		w, st, err := wal.Open(cfg.WALPath, wal.Options{
			SyncWindow: cfg.WALSyncWindow,
			Strict:     cfg.WALStrict,
			Apply: func(seq uint64, payload []byte) error {
				doc, err := wal.DecodeDocument(payload)
				if err != nil {
					return err
				}
				if dyn.Contains(doc.ID) {
					// Already covered by the initial corpus — the entry
					// predates a checkpoint whose rotation didn't land.
					return nil
				}
				return dyn.InsertContext(context.Background(), doc)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("xseq: wal %s: %w", cfg.WALPath, err)
		}
		dyn.AttachWAL(w, wal.EncodeDocument, st.LastSeq)
		di.w, di.replay = w, st
	}
	if cfg.QueryCacheEntries > 0 {
		di.eng = qcache.New(dyn, cfg.QueryCacheEntries)
	}
	return di, nil
}

// Insert adds one document; ids must be unique across the index's life. It
// is InsertContext with context.Background().
func (d *DynamicIndex) Insert(doc *Document) error {
	return d.InsertContext(context.Background(), doc)
}

// InsertContext adds one document under ctx (which governs any automatic
// compaction the insert triggers). If that compaction fails — builder
// error, panic, or cancellation — the document is still inserted and
// queryable, the old main index keeps serving, and the failure is returned
// as a *CompactionError; compaction retries at the next threshold crossing.
func (d *DynamicIndex) InsertContext(ctx context.Context, doc *Document) (err error) {
	defer guard(&err)
	if doc == nil || doc.root == nil {
		return fmt.Errorf("xseq: nil document")
	}
	return d.d.InsertContext(ctx, &xmltree.Document{ID: doc.id, Root: doc.root})
}

// Query answers an XPath-subset query over main + delta. It is
// QueryContext with context.Background().
func (d *DynamicIndex) Query(q string) ([]int32, error) {
	return d.QueryContext(context.Background(), q)
}

// QueryContext is Query honouring ctx in both the lazy delta rebuild and
// the match loops.
func (d *DynamicIndex) QueryContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return d.eng.QueryWithContext(ctx, pat, engine.QueryOptions{})
}

// Compact folds buffered documents into the main index. On failure the
// index keeps serving its pre-compaction state and the error is a
// *CompactionError; see CompactContext.
func (d *DynamicIndex) Compact() error { return d.CompactContext(context.Background()) }

// CompactContext is Compact honouring ctx. Whatever goes wrong — builder
// error, panic, cancellation — the serving state is untouched: queries
// before and after a failed compaction answer identically.
func (d *DynamicIndex) CompactContext(ctx context.Context) (err error) {
	defer guard(&err)
	return d.d.CompactContext(ctx)
}

// Resequence installs an adaptive weight vector (slash-separated element
// name paths -> w(C), as in Config.Weights; unknown paths are skipped) and
// forces a full weighted rebuild of the main engine, re-sequencing every
// document so frequently-queried paths sequence earlier — the dynamic
// layout's half of online adaptive resequencing. The vector sticks: later
// delta builds and compactions sequence under it too, until the next
// Resequence. Failure containment is compaction's exactly: a failed
// rebuild is a counted *CompactionError (degraded Health), the serving
// state is untouched, and queries keep answering from the old sequencing.
// A nil or empty vector reverts to the unweighted g_best strategy at the
// next rebuild.
func (d *DynamicIndex) Resequence(ctx context.Context, weights map[string]float64) (err error) {
	defer guard(&err)
	if len(weights) == 0 {
		d.weights.Store(nil)
	} else {
		d.weights.Store(&weights)
	}
	return d.d.RebuildContext(ctx)
}

// LastCompactionError reports the most recent compaction failure, nil
// after a successful compaction (or if none ever failed).
func (d *DynamicIndex) LastCompactionError() error { return d.d.LastCompactionError() }

// NumDocuments reports the total corpus size including buffered documents.
func (d *DynamicIndex) NumDocuments() int { return d.d.NumDocuments() }

// PendingDocuments reports how many documents await compaction.
func (d *DynamicIndex) PendingDocuments() int { return d.d.PendingDocuments() }

// QueryVerified is Query with exact value semantics over main + delta:
// every candidate is checked against its stored document. Requires
// Config.KeepDocuments.
func (d *DynamicIndex) QueryVerified(q string) ([]int32, error) {
	return d.QueryVerifiedContext(context.Background(), q)
}

// QueryVerifiedContext is QueryVerified honouring ctx.
func (d *DynamicIndex) QueryVerifiedContext(ctx context.Context, q string) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return d.eng.QueryWithContext(ctx, pat, engine.QueryOptions{Verify: true})
}

// QueryLimit is Query that stops after max distinct documents (max <= 0:
// unlimited), counting across main + delta.
func (d *DynamicIndex) QueryLimit(q string, max int) ([]int32, error) {
	return d.QueryLimitContext(context.Background(), q, max)
}

// QueryLimitContext is QueryLimit honouring ctx.
func (d *DynamicIndex) QueryLimitContext(ctx context.Context, q string, max int) (ids []int32, err error) {
	defer guard(&err)
	pat, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return d.eng.QueryWithContext(ctx, pat, engine.QueryOptions{MaxResults: max})
}

// Stats returns index statistics (the corpus includes buffered documents;
// node and link counts cover the compacted main index).
func (d *DynamicIndex) Stats() Stats {
	st := Stats{
		Documents:          d.eng.NumDocuments(),
		IndexNodes:         d.eng.NumNodes(),
		Links:              d.eng.NumLinks(),
		EstimatedDiskBytes: d.eng.EstimatedDiskBytes(),
		QueryCache:         cacheStats(d.eng),
	}
	if per := d.eng.Shards(); per != nil {
		st.Shards = len(per)
		st.PerShard = make([]ShardStats, len(per))
		for i, s := range per {
			st.PerShard[i] = ShardStats{Documents: s.Documents, IndexNodes: s.Nodes, Links: s.Links}
		}
	}
	return st
}

// CacheStats reports the query result cache's counters, nil when built
// without Config.QueryCacheEntries.
func (d *DynamicIndex) CacheStats() *QueryCacheStats { return cacheStats(d.eng) }

// AppliedSeq reports the WAL sequence number of the last applied insert —
// the durable high-water mark on a primary, the replication position on a
// follower. 0 before any insert (and, without a WAL, before any insert
// since construction).
func (d *DynamicIndex) AppliedSeq() uint64 { return d.d.AppliedSeq() }

// WALStats reports the write-ahead log's condition, nil when the index was
// built without Config.WALPath.
type WALStats struct {
	// Path is the log file.
	Path string
	// SizeBytes is the log's current size.
	SizeBytes int64
	// Entries is the number of entries currently in the log.
	Entries int
	// BaseSeq is the checkpoint base: entries at or below it were rotated
	// into a snapshot. LastSeq is the append head; SyncedSeq the durable
	// (fsynced) watermark.
	BaseSeq, LastSeq, SyncedSeq uint64
	// Appends, Syncs, Rotations count log operations since startup.
	Appends, Syncs, Rotations int64
	// ReplayedEntries and ReplayTruncatedBytes describe startup recovery:
	// how many entries the log restored, and how long a torn tail it
	// truncated (0 for a clean shutdown).
	ReplayedEntries      int
	ReplayTruncatedBytes int64
	// LastError is the sticky fsync failure, "" while the log is healthy.
	// A log with a LastError acknowledges nothing: inserts fail until the
	// process (and its disk) recovers.
	LastError string
}

// WALStats returns the log's condition, nil without a WAL.
func (d *DynamicIndex) WALStats() *WALStats {
	if d.w == nil {
		return nil
	}
	st := d.w.Stats()
	return &WALStats{
		Path:                 st.Path,
		SizeBytes:            st.SizeBytes,
		Entries:              st.Entries,
		BaseSeq:              st.BaseSeq,
		LastSeq:              st.LastSeq,
		SyncedSeq:            st.SyncedSeq,
		Appends:              st.Appends,
		Syncs:                st.Syncs,
		Rotations:            st.Rotations,
		ReplayedEntries:      d.replay.Entries,
		ReplayTruncatedBytes: d.replay.TruncatedBytes,
		LastError:            st.LastError,
	}
}

// ReadWALFrames returns raw framed log entries with sequence numbers >=
// from out of the durable prefix of the WAL — the payload a primary
// streams to followers. It returns up to maxBytes of frames (always at
// least one entry when any qualifies), the entry count, and the last
// included sequence number. Entries a checkpoint rotated away report
// ErrWALRotated; an index without a WAL reports ErrUnsupported.
func (d *DynamicIndex) ReadWALFrames(from uint64, maxBytes int) (frames []byte, count int, last uint64, err error) {
	defer guard(&err)
	if d.w == nil {
		return nil, 0, 0, fmt.Errorf("xseq: wal frames on an index without a WAL: %w", ErrUnsupported)
	}
	return d.w.ReadFrames(from, maxBytes)
}

// WaitWALSynced blocks until the WAL's durable watermark reaches seq, ctx
// ends, or the index closes — the long-poll primitive behind a replication
// endpoint. An index without a WAL reports ErrUnsupported.
func (d *DynamicIndex) WaitWALSynced(ctx context.Context, seq uint64) (err error) {
	defer guard(&err)
	if d.w == nil {
		return fmt.Errorf("xseq: wal wait on an index without a WAL: %w", ErrUnsupported)
	}
	return d.w.WaitSynced(ctx, seq)
}

// ApplyReplicated applies one replicated WAL entry — a (seq, payload)
// frame read from a primary's stream — to a follower index. Entries must
// arrive in sequence order (seq == AppliedSeq()+1); the payload is decoded
// exactly as local replay would, and an entry whose document the corpus
// already holds (snapshot-seed overlap) advances the position without
// re-applying. If this index has its own WAL, an applied entry is logged
// under the primary's sequence number before it is applied, so the
// follower's durability matches its acknowledgement.
func (d *DynamicIndex) ApplyReplicated(ctx context.Context, seq uint64, payload []byte) (err error) {
	defer guard(&err)
	if want := d.d.AppliedSeq() + 1; seq != want {
		return fmt.Errorf("xseq: replicated entry seq %d, want %d (apply in order)", seq, want)
	}
	doc, err := wal.DecodeDocument(payload)
	if err != nil {
		return err
	}
	if d.d.Contains(doc.ID) {
		// The entry predates the snapshot seed: a checkpoint can cover more
		// than its advertised sequence number (the primary crashed between
		// snapshot save and log rotation), so the stream's first entries may
		// duplicate seeded documents. Advance the position without applying —
		// exactly what local replay does with such entries.
		return d.d.SkipReplicated(seq)
	}
	return d.d.InsertContext(ctx, doc)
}

// ReseedFromSnapshot replaces this index's entire state with a loaded
// checkpoint snapshot: the snapshot's engine becomes the new main engine,
// its stored corpus the new corpus, and seq — the WAL sequence number the
// snapshot covers, advertised by the primary alongside it — the new
// replication position. This is the follower's escape from ErrWALRotated:
// when the primary's log no longer reaches back to the follower's
// position, only a snapshot can.
//
// The snapshot must carry its corpus (built with Config.KeepDocuments,
// which checkpointing primaries arm); without it later compactions would
// be impossible. On any error the index keeps serving its old state
// untouched. A local WAL is reset to an empty log based at seq — its
// entries are all at or below seq and therefore redundant with the
// snapshot; callers that seed restarts from a checkpoint file should
// persist the downloaded snapshot under their own checkpoint path before
// calling. ix is consumed: do not use it after a successful call.
func (d *DynamicIndex) ReseedFromSnapshot(ix *Index, seq uint64) (err error) {
	defer guard(&err)
	if ix == nil {
		return fmt.Errorf("xseq: reseed from nil snapshot")
	}
	eng := ix.baseEngine()
	docs := eng.Documents()
	if docs == nil && eng.NumDocuments() > 0 {
		return fmt.Errorf("xseq: reseed snapshot was built without Config.KeepDocuments")
	}
	if d.w != nil {
		// The log goes first: if the engine swap below then fails, the
		// served state is behind the log base, the next poll gets another
		// 410, and the re-seed simply runs again — whereas swapping the
		// engine first could acknowledge inserts a crashed restart replays
		// from a log that no longer matches.
		if err := d.w.Reset(seq); err != nil {
			return err
		}
	}
	return d.d.ResetTo(eng, docs, seq)
}

// Checkpoint is CheckpointContext with context.Background().
func (d *DynamicIndex) Checkpoint(path string) error {
	return d.CheckpointContext(context.Background(), path)
}

// CheckpointContext compacts the index, snapshots the compacted state to
// path (SaveFile semantics: temp file, fsync, atomic rename), and rotates
// the WAL so entries the snapshot covers are dropped from the log. Inserts
// arriving during the snapshot stay in the log. Build with
// Config.KeepDocuments if the snapshot is meant to seed a restart (see
// BuildDynamic). A crash between the snapshot and the rotation leaves an
// overlap that replay skips; a crash before the snapshot leaves the full
// log. Without a WAL, CheckpointContext is compact + save.
func (d *DynamicIndex) CheckpointContext(ctx context.Context, path string) error {
	_, err := d.CheckpointAt(ctx, path)
	return err
}

// CheckpointAt is CheckpointContext returning the WAL sequence number the
// written snapshot covers — what a serving layer advertises alongside the
// snapshot (X-Snapshot-Seq) so a re-seeding follower knows where to resume
// tailing.
func (d *DynamicIndex) CheckpointAt(ctx context.Context, path string) (seq uint64, err error) {
	defer guard(&err)
	seq, main, err := d.d.CompactForCheckpoint(ctx)
	if err != nil {
		return 0, err
	}
	if main == nil {
		return 0, fmt.Errorf("xseq: checkpoint of an empty index")
	}
	if err := main.SaveFile(path); err != nil {
		return 0, err
	}
	if d.w != nil {
		if err := d.w.Rotate(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Close releases the write-ahead log (flushing its final group commit);
// the index itself keeps answering queries, but further inserts fail. A
// WAL-less index closes as a no-op. Close is idempotent.
func (d *DynamicIndex) Close() error {
	if d.w == nil {
		return nil
	}
	return d.w.Close()
}

// Health summarizes a DynamicIndex's serving condition for health
// endpoints. Degraded means the most recent compaction failed; the index is
// still fully serviceable (queries answer over the pre-compaction state
// plus the delta) and compaction retries automatically, so Degraded is a
// "needs attention", not an outage.
type Health struct {
	// Documents is the total corpus size including buffered documents.
	Documents int
	// Pending is the number of documents awaiting compaction.
	Pending int
	// Compactions counts successful compactions over the index's life.
	Compactions int
	// FailedCompactions counts compaction attempts that failed.
	FailedCompactions int
	// LastCompactionError is the most recent compaction failure rendered
	// as text, "" when the last compaction succeeded (or none ever ran).
	LastCompactionError string
	// Degraded reports LastCompactionError != "".
	Degraded bool
}

// Health returns the serving-condition summary.
func (d *DynamicIndex) Health() Health {
	h := Health{
		Documents:         d.d.NumDocuments(),
		Pending:           d.d.PendingDocuments(),
		Compactions:       d.d.Compactions(),
		FailedCompactions: d.d.FailedCompactions(),
	}
	if err := d.d.LastCompactionError(); err != nil {
		h.LastCompactionError = err.Error()
		h.Degraded = true
	}
	return h
}

// IOStats reports simulated disk I/O counters (all zero until EnablePagedIO).
type IOStats struct {
	Reads        int64
	Hits         int64
	DiskAccesses int64
}

// pagedEngine is the capability a layout must have for paged I/O
// simulation; only the monolithic index has a single page layout.
type pagedEngine interface {
	AttachPager(*pager.Pool) (int64, error)
	DetachPager()
	PagerStats() pager.Stats
	ResetPagerStats()
	DropPagerCache()
}

// pagedEngine returns the paged-I/O capability of the underlying engine,
// nil when the layout has none.
func (ix *Index) pagedEngine() pagedEngine {
	pe, _ := ix.baseEngine().(pagedEngine)
	return pe
}

// EnablePagedIO lays the index out on simulated 4 KiB pages behind an LRU
// buffer pool of poolPages pages (<= 0: 256) and starts counting disk
// accesses. It returns the on-disk page count. Paged I/O simulation is a
// single-index instrument; layouts without one page image (sharded indexes)
// return an error wrapping ErrUnsupported.
func (ix *Index) EnablePagedIO(poolPages int) (int64, error) {
	pe := ix.pagedEngine()
	if pe == nil {
		return 0, fmt.Errorf("xseq: paged I/O simulation on a sharded index: %w", ErrUnsupported)
	}
	ix.pool = pager.NewPool(poolPages)
	return pe.AttachPager(ix.pool)
}

// DisablePagedIO stops I/O accounting.
func (ix *Index) DisablePagedIO() {
	if pe := ix.pagedEngine(); pe != nil {
		pe.DetachPager()
	}
	ix.pool = nil
}

// IO returns the I/O counters accumulated since EnablePagedIO (or the last
// ResetIO).
func (ix *Index) IO() IOStats {
	pe := ix.pagedEngine()
	if pe == nil {
		return IOStats{}
	}
	s := pe.PagerStats()
	return IOStats{Reads: s.Reads, Hits: s.Hits, DiskAccesses: s.Misses}
}

// ResetIO zeroes the I/O counters, keeping the buffer pool warm.
func (ix *Index) ResetIO() {
	if pe := ix.pagedEngine(); pe != nil {
		pe.ResetPagerStats()
	}
}

// DropIOCache empties the buffer pool (cold-cache measurements).
func (ix *Index) DropIOCache() {
	if pe := ix.pagedEngine(); pe != nil {
		pe.DropPagerCache()
	}
}
